// Unit tests for the rate annotation layer (core/protocol.hpp) and the two
// registered rate-annotated protocols (protocols/rated.hpp): concept
// detection, the unrated defaults, the type-erased AnyProtocol rate surface,
// transition semantics, and end-to-end elections on every engine.
// Cross-engine distributional agreement lives in test_statistical.cpp; the
// gillespie propensity marginals in test_gillespie_engine.cpp.
#include <gtest/gtest.h>

#include <memory>

#include "core/protocol.hpp"
#include "core/transition_cache.hpp"
#include "protocols/angluin.hpp"
#include "protocols/lottery.hpp"
#include "protocols/rated.hpp"
#include "protocols/registry.hpp"

namespace ppsim {
namespace {

static_assert(RatedProtocol<RatedEpidemic>);
static_assert(RatedProtocol<TwoRateElection>);
static_assert(!RatedProtocol<Angluin>);
static_assert(!RatedProtocol<Lottery>);
static_assert(InternableProtocol<RatedEpidemic>);
static_assert(InternableProtocol<TwoRateElection>);

TEST(RateLayer, UnratedProtocolsDefaultToRateOne) {
    const Angluin proto;
    const AngluinState a;
    const AngluinState b;
    EXPECT_EQ(pair_rate_of(proto, a, b), 1.0);
    EXPECT_EQ(max_rate_of(proto), 1.0);
}

TEST(RateLayer, RatedProtocolsReportTheirRates) {
    const RatedEpidemic proto;
    const RatedEpidemicState slow{true, false};
    const RatedEpidemicState fast{true, true};
    EXPECT_EQ(pair_rate_of(proto, slow, slow), 1.0);
    EXPECT_EQ(pair_rate_of(proto, fast, slow), 2.0);
    EXPECT_EQ(pair_rate_of(proto, slow, fast), 2.0);
    EXPECT_EQ(pair_rate_of(proto, fast, fast), 4.0);
    EXPECT_EQ(max_rate_of(proto), 4.0);
}

TEST(RateLayer, AnyProtocolExposesRates) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const auto rated = registry.make("rated_epidemic", 16);
    EXPECT_EQ(rated->max_rate(), 4.0);
    std::vector<std::byte> slot(rated->state_size());
    rated->write_initial_state(slot.data());
    EXPECT_EQ(rated->pair_rate(slot.data(), slot.data()), 1.0);  // slow–slow

    const auto unrated = registry.make("angluin06", 16);
    EXPECT_EQ(unrated->max_rate(), 1.0);
    std::vector<std::byte> uslot(unrated->state_size());
    unrated->write_initial_state(uslot.data());
    EXPECT_EQ(unrated->pair_rate(uslot.data(), uslot.data()), 1.0);
}

TEST(RatedEpidemicProtocol, ContestPromotesWinnerAndInfectsResponder) {
    const RatedEpidemic proto;
    RatedEpidemicState a;  // candidate, slow
    RatedEpidemicState b;
    proto.interact(a, b);
    EXPECT_TRUE(a.candidate);
    EXPECT_TRUE(a.fast);  // winner is now a super-spreader
    EXPECT_FALSE(b.candidate);
    EXPECT_FALSE(b.fast);
    EXPECT_EQ(proto.output(a), Role::leader);
    EXPECT_EQ(proto.output(b), Role::follower);

    // Follower interactions are null in every direction.
    RatedEpidemicState c = a;
    RatedEpidemicState d = b;
    proto.interact(c, d);
    EXPECT_EQ(c, a);
    EXPECT_EQ(d, b);
    proto.interact(d, c);
    EXPECT_EQ(c, a);
    EXPECT_EQ(d, b);
}

TEST(TwoRateElectionProtocol, SharesTheLotteryChainWithHotColdRates) {
    const std::size_t n = 1024;
    const TwoRateElection rated = TwoRateElection::for_population(n);
    const Lottery base = Lottery::for_population(n);
    EXPECT_EQ(rated.lmax(), base.lmax());
    // Transitions delegate to the lottery exactly.
    LotteryState a0;
    LotteryState a1;
    LotteryState b0;
    LotteryState b1;
    rated.interact(a0, a1);
    base.interact(b0, b1);
    EXPECT_EQ(a0, b0);
    EXPECT_EQ(a1, b1);
    // Hot (still racing) agents carry weight 3, settled followers 1.
    LotteryState leader;  // leader = true by default
    LotteryState follower;
    follower.leader = false;
    EXPECT_EQ(rated.rate(leader, leader), 9.0);
    EXPECT_EQ(rated.rate(leader, follower), 3.0);
    EXPECT_EQ(rated.rate(follower, follower), 1.0);
    EXPECT_EQ(rated.max_rate(), 9.0);
}

TEST(RateLayer, CachedTransitionsMemoiseFiringProbability) {
    // compute_cached_transition stores rate(a, b)/max_rate of the *input*
    // pair; unrated protocols keep the default 1 (never thinned).
    RatedEpidemic proto;
    StateIndex<RatedEpidemic> index;
    const StateId slow = index.intern(proto, RatedEpidemicState{true, false});
    const StateId fast = index.intern(proto, RatedEpidemicState{true, true});
    const auto intern = [&](const RatedEpidemicState& s) {
        return index.intern(proto, s);
    };
    const CachedTransition slow_slow =
        compute_cached_transition(proto, index, slow, slow, intern);
    EXPECT_FLOAT_EQ(slow_slow.fire_weight, 0.25F);
    const CachedTransition fast_slow =
        compute_cached_transition(proto, index, fast, slow, intern);
    EXPECT_FLOAT_EQ(fast_slow.fire_weight, 0.5F);
    EXPECT_EQ(fast_slow.leader_delta, -1);

    Angluin unrated;
    StateIndex<Angluin> uindex;
    const StateId lead = uindex.intern(unrated, AngluinState{true});
    const CachedTransition tr = compute_cached_transition(
        unrated, uindex, lead, lead,
        [&](const AngluinState& s) { return uindex.intern(unrated, s); });
    EXPECT_FLOAT_EQ(tr.fire_weight, 1.0F);
}

TEST(RatedProtocols, ElectOneLeaderOnEveryEngine) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::size_t n = 128;
    for (const char* name : {"rated_epidemic", "rated_election"}) {
        for (const EngineKind engine :
             {EngineKind::agent, EngineKind::batched, EngineKind::gillespie}) {
            const RunResult r = registry.run_election(
                name, n, 23, static_cast<StepCount>(n) * n * 500, engine);
            EXPECT_TRUE(r.converged) << name << " on " << to_string(engine);
            EXPECT_EQ(r.leader_count, 1U) << name << " on " << to_string(engine);
            ASSERT_TRUE(r.stabilization_step.has_value())
                << name << " on " << to_string(engine);
        }
    }
}

TEST(RatedProtocols, VerifyOutputsStableHoldsAfterStabilisation) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::size_t n = 128;
    for (const EngineKind engine :
         {EngineKind::agent, EngineKind::batched, EngineKind::gillespie}) {
        const RunResult r = registry.run_election_verified(
            "rated_epidemic", n, 29, static_cast<StepCount>(n) * n * 500,
            /*verify_steps=*/static_cast<StepCount>(n) * 64, engine);
        EXPECT_TRUE(r.converged) << to_string(engine);
    }
}

}  // namespace
}  // namespace ppsim
