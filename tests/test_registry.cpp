// Tests for the protocol registry and the type-erased AnyProtocol adapter.
#include <gtest/gtest.h>

#include <algorithm>

#include "protocols/angluin.hpp"
#include "protocols/registry.hpp"

namespace ppsim {
namespace {

TEST(Registry, ListsAllBuiltInProtocols) {
    const auto names = ProtocolRegistry::instance().names();
    for (const char* expected :
         {"angluin06", "lottery", "mst18_style", "pll", "pll_symmetric"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
            << "missing protocol " << expected;
    }
}

TEST(Registry, InfoCarriesTable1Metadata) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const ProtocolInfo& pll = registry.info("pll");
    EXPECT_EQ(pll.theory_states, "O(log n)");
    EXPECT_EQ(pll.theory_time, "O(log n)");
    EXPECT_THROW((void)registry.info("nope"), InvalidArgument);
    EXPECT_TRUE(registry.contains("pll"));
    EXPECT_FALSE(registry.contains("nope"));
}

TEST(Registry, RunsElectionsByName) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    for (const std::string& name : registry.names()) {
        const std::size_t n = 64;
        const RunResult result = registry.run_election(name, n, 5, 50'000'000);
        EXPECT_TRUE(result.converged) << name;
        EXPECT_EQ(result.leader_count, 1U) << name;
    }
}

TEST(Registry, VerifiedRunsConfirmStability) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const RunResult result =
        registry.run_election_verified("pll", 128, 9, 50'000'000, 10'000);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.leader_count, 1U);
}

TEST(Registry, UnknownNamesThrow) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    EXPECT_THROW((void)registry.run_election("bogus", 16, 1, 100), InvalidArgument);
    EXPECT_THROW((void)registry.make("bogus", 16), InvalidArgument);
}

TEST(Registry, CustomRegistration) {
    ProtocolRegistry registry;
    registry.register_protocol(ProtocolInfo{"my_angluin", "[local]", "O(1)", "O(n)"},
                               [](std::size_t) { return Angluin{}; });
    EXPECT_TRUE(registry.contains("my_angluin"));
    const RunResult result = registry.run_election("my_angluin", 32, 3, 1'000'000);
    EXPECT_TRUE(result.converged);
}

TEST(AnyProtocol, AdapterMatchesStaticBehaviour) {
    const auto any = ProtocolRegistry::instance().make("angluin06", 16);
    EXPECT_EQ(any->state_size(), sizeof(AngluinState));
    EXPECT_EQ(any->state_bound(), 2U);
    EXPECT_EQ(any->name(), "angluin06");

    std::vector<std::byte> a(any->state_size());
    std::vector<std::byte> b(any->state_size());
    any->write_initial_state(a.data());
    any->write_initial_state(b.data());
    EXPECT_EQ(any->output(a.data()), Role::leader);
    any->interact(a.data(), b.data());
    EXPECT_EQ(any->output(a.data()), Role::leader);
    EXPECT_EQ(any->output(b.data()), Role::follower);
    EXPECT_NE(any->state_key(a.data()), any->state_key(b.data()));
}

TEST(AnyProtocol, PllAdapterUsesProtocolStateKey) {
    const auto any = ProtocolRegistry::instance().make("pll", 64);
    std::vector<std::byte> a(any->state_size());
    any->write_initial_state(a.data());
    EXPECT_EQ(any->output(a.data()), Role::leader);
    EXPECT_GT(any->state_bound(), 2U);
}

TEST(Registry, UnimplementedRowsAreDocumented) {
    const auto rows = unimplemented_table1_rows();
    EXPECT_GE(rows.size(), 5U);
    for (const ProtocolInfo& row : rows) {
        EXPECT_FALSE(row.citation.empty());
        EXPECT_FALSE(row.theory_states.empty());
        EXPECT_FALSE(row.theory_time.empty());
    }
}

}  // namespace
}  // namespace ppsim
