// Resume-equivalence tests: the checkpoint/resume correctness contract
// (docs/ARCHITECTURE.md "Checkpoint format & resume-equivalence contract").
//
// The contract: checkpoint a run at step k, rebuild the simulation from the
// checkpoint, and the continued run is *bit-identical* to the uninterrupted
// run at the same seed and thread count — same census, same counters, and
// (the strongest form checked here) the same serialised run state byte for
// byte, which pins every PRNG stream position, the interned state-id order,
// the fault-plan progress and every observer's recorded history.
//
// Pausing is part of the stream contract exactly like --threads: stopping a
// count engine at step k clamps a round there, so the "uninterrupted"
// reference below is the *same* simulation object pausing at the same k
// (write_checkpoint is const — taking the checkpoint never perturbs the
// run) and then continuing in-process, while the resumed run continues from
// a freshly constructed simulation restored from the file.
//
// Grid cells run every engine (agent, batched, gillespie, hybrid), every
// batched pairing mode, and threads 1 and 4; dedicated cases cover hybrid
// mid-switch checkpoints (a forced engine handoff before the checkpoint),
// checkpoints taken mid-fault-plan (inside a silence window, with faults
// both applied and pending), periodic-cadence checkpoints, observer
// progress across the resume boundary (DeadlineObserver fires exactly once,
// RecoveryObserver resolves identically), and loud rejection of mismatched
// resumes.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "core/batch_pairing.hpp"
#include "core/calibration.hpp"
#include "core/engine.hpp"
#include "core/fault.hpp"
#include "core/observer.hpp"
#include "core/persist.hpp"
#include "core/simulation.hpp"
#include "protocols/pll.hpp"
#include "protocols/registry.hpp"

namespace ppsim {
namespace {

std::string temp_path(const std::string& name) {
    return (std::filesystem::temp_directory_path() / name).string();
}

/// Restores the ambient hybrid options on scope exit (the options are
/// process-global and every test in this binary shares one process).
class ScopedHybridOptions {
public:
    ScopedHybridOptions() : saved_(hybrid_options()) {}
    ~ScopedHybridOptions() { set_hybrid_options(saved_); }

private:
    HybridOptions saved_;
};

/// A hand-built calibration table injected into every hybrid cell: no probe
/// runs (probes time wall-clock and would make hybrid decisions
/// machine-dependent), fully deterministic decisions. Shaped so the wide
/// phase favours batched-bulk and a null-dominated tail favours gillespie.
CalibrationTable injected_table() {
    CalibrationTable table;
    const auto set = [&table](HybridMode m, double wide, double narrow) {
        ModeCost& cost = table.costs[static_cast<std::size_t>(m)];
        cost.wide_ns = wide;
        cost.narrow_ns = narrow;
        cost.wide_exponent = 0.0;
        cost.narrow_exponent = 0.0;
    };
    set(HybridMode::agent, 40.0, 40.0);
    set(HybridMode::batched_pairwise, 10.0, 30.0);
    set(HybridMode::batched_bulk, 8.0, 25.0);
    set(HybridMode::gillespie, 30.0, 2.0);
    table.probe_population = 0;  // raw anchors: no population rescaling
    table.threads = 1;
    return table;
}

void inject_hybrid_table() {
    HybridOptions options;
    options.injected = injected_table();
    set_hybrid_options(options);
}

/// The full serialised run state — every PRNG position, the census, the
/// counters, the fault progress and all observer payloads.
std::string full_state(const Simulation& sim) {
    CheckpointWriter w;
    sim.save_checkpoint(w);
    return w.take();
}

/// The resumed run must be indistinguishable from the reference: readable
/// field comparisons first (so a failure names what diverged), then the
/// byte-for-byte claim over the complete serialised state.
void expect_same_run_state(const Simulation& resumed, const Simulation& reference) {
    EXPECT_EQ(resumed.steps(), reference.steps());
    EXPECT_EQ(resumed.leader_count(), reference.leader_count());
    EXPECT_EQ(resumed.stabilization_step(), reference.stabilization_step());
    EXPECT_EQ(resumed.population_size(), reference.population_size());
    const ConfigurationSnapshot a = resumed.state_counts();
    const ConfigurationSnapshot b = reference.state_counts();
    ASSERT_EQ(a.counts.size(), b.counts.size()) << "census width diverged";
    for (std::size_t i = 0; i < a.counts.size(); ++i) {
        EXPECT_EQ(a.counts[i].key, b.counts[i].key) << "census entry " << i;
        EXPECT_EQ(a.counts[i].count, b.counts[i].count) << "census entry " << i;
        EXPECT_EQ(a.counts[i].role, b.counts[i].role) << "census entry " << i;
    }
    EXPECT_EQ(full_state(resumed), full_state(reference))
        << "serialised run states differ: a PRNG stream, id order or counter "
           "diverged after resume";
}

// --- the protocol × engine × batch-mode × threads grid ----------------------

struct ResumeCell {
    const char* protocol;
    EngineKind engine;
    BatchMode batch_mode;
    std::size_t threads;
};

// All cells: n = 128, seed = 2019, pause at step 500, budget 50·n².
constexpr ResumeCell resume_cells[] = {
    {"pll", EngineKind::agent, BatchMode::automatic, 1},
    {"pll", EngineKind::batched, BatchMode::automatic, 1},
    {"pll", EngineKind::batched, BatchMode::pairwise, 1},
    {"pll", EngineKind::batched, BatchMode::bulk, 1},
    {"pll", EngineKind::gillespie, BatchMode::automatic, 1},
    {"pll", EngineKind::hybrid, BatchMode::automatic, 1},
    {"pll", EngineKind::batched, BatchMode::pairwise, 4},
    {"pll", EngineKind::batched, BatchMode::bulk, 4},
    {"pll", EngineKind::gillespie, BatchMode::automatic, 4},
    {"pll", EngineKind::hybrid, BatchMode::automatic, 4},
    {"lottery", EngineKind::agent, BatchMode::automatic, 1},
    {"lottery", EngineKind::batched, BatchMode::automatic, 1},
    {"lottery", EngineKind::gillespie, BatchMode::automatic, 1},
    {"lottery", EngineKind::hybrid, BatchMode::automatic, 1},
    {"lottery", EngineKind::batched, BatchMode::automatic, 4},
    {"angluin06", EngineKind::agent, BatchMode::automatic, 1},
    {"angluin06", EngineKind::batched, BatchMode::bulk, 1},
    {"angluin06", EngineKind::gillespie, BatchMode::automatic, 4},
};

class ResumeEquivalence : public ::testing::TestWithParam<ResumeCell> {};

TEST_P(ResumeEquivalence, ContinuedRunIsBitIdentical) {
    const ResumeCell& cell = GetParam();
    ScopedHybridOptions guard;
    if (cell.engine == EngineKind::hybrid) inject_hybrid_table();

    const std::size_t n = 128;
    const std::uint64_t seed = 2019;
    const StepCount pause = 500;
    const auto budget = static_cast<StepCount>(n) * n * 50;
    const ProtocolRegistry& registry = ProtocolRegistry::instance();

    const auto reference = registry.make_simulation(
        cell.protocol, n, seed, cell.engine, cell.batch_mode, cell.threads);
    (void)reference->run_for(pause);

    const std::string path = temp_path(
        std::string("ppsim_resume_") + cell.protocol + "_" +
        std::string(to_string(cell.engine)) + "_" +
        std::string(to_string(cell.batch_mode)) + "_t" +
        std::to_string(cell.threads) + ".ppck");
    reference->write_checkpoint(path);

    const auto resumed = registry.resume_simulation(path);
    EXPECT_EQ(resumed->steps(), pause);
    expect_same_run_state(*resumed, *reference);  // identical at the checkpoint

    (void)reference->run_until_one_leader(budget);
    (void)resumed->run_until_one_leader(budget);
    expect_same_run_state(*resumed, *reference);  // and after continuing
    std::filesystem::remove(path);
}

std::string cell_name(const ::testing::TestParamInfo<ResumeCell>& info) {
    return std::string(info.param.protocol) + "_" +
           std::string(to_string(info.param.engine)) + "_" +
           std::string(to_string(info.param.batch_mode)) + "_t" +
           std::to_string(info.param.threads);
}

INSTANTIATE_TEST_SUITE_P(Cells, ResumeEquivalence, ::testing::ValuesIn(resume_cells),
                         cell_name);

// --- hybrid mid-switch checkpoints ------------------------------------------

TEST(ResumeEquivalenceHybrid, MidSwitchCheckpointResumesOnTheSameSegmentStream) {
    ScopedHybridOptions guard;
    inject_hybrid_table();
    const std::size_t n = 128;
    const std::uint64_t seed = 77;
    using Sim = detail::HybridSimulation<Pll>;

    // Reference: run in the initial mode, force a mid-run engine handoff
    // (segment 1, a fresh stream split), run further, checkpoint.
    Sim reference(Pll::for_population(n), n, seed, /*threads=*/1);
    (void)reference.run_for(300);
    reference.engine().force_mode(HybridMode::gillespie);
    ASSERT_EQ(reference.engine().switches(), 1U);
    (void)reference.run_for(200);

    const std::string path = temp_path("ppsim_resume_hybrid_midswitch.ppck");
    reference.write_checkpoint(path);

    // Resumed: a fresh hybrid simulation (same protocol, seed, threads)
    // restored from the file must come back in the post-switch mode, on the
    // post-switch segment stream, and continue bit-identically.
    Sim resumed(Pll::for_population(n), n, seed, /*threads=*/1);
    resumed.restore_checkpoint_file(path);
    EXPECT_EQ(resumed.engine().mode(), HybridMode::gillespie);
    EXPECT_EQ(resumed.engine().switches(), 1U);
    EXPECT_EQ(resumed.steps(), 500U);
    expect_same_run_state(resumed, reference);

    (void)reference.run_for(2000);
    (void)resumed.run_for(2000);
    expect_same_run_state(resumed, reference);
    std::filesystem::remove(path);
}

TEST(ResumeEquivalenceHybrid, CheckpointCarriesTheCalibrationTable) {
    // A resumed hybrid run must decide from the *checkpointed* table — the
    // one that drove every decision so far — not from whatever the resuming
    // process would probe or inject.
    ScopedHybridOptions guard;
    inject_hybrid_table();
    const std::size_t n = 128;
    using Sim = detail::HybridSimulation<Pll>;
    Sim original(Pll::for_population(n), n, /*seed=*/3, /*threads=*/1);
    (void)original.run_for(400);
    const std::string path = temp_path("ppsim_resume_hybrid_table.ppck");
    original.write_checkpoint(path);

    // Resume under a *different* ambient table: the restored engine must
    // carry the original's.
    HybridOptions other;
    CalibrationTable skewed = injected_table();
    skewed.costs[0].wide_ns = 12345.0;
    other.injected = skewed;
    set_hybrid_options(other);
    Sim resumed(Pll::for_population(n), n, /*seed=*/3, /*threads=*/1);
    resumed.restore_checkpoint_file(path);
    const CalibrationTable& restored = resumed.engine().calibration_table();
    const CalibrationTable expected = injected_table();
    for (std::size_t m = 0; m < hybrid_mode_count; ++m) {
        EXPECT_DOUBLE_EQ(restored.costs[m].wide_ns, expected.costs[m].wide_ns);
        EXPECT_DOUBLE_EQ(restored.costs[m].narrow_ns, expected.costs[m].narrow_ns);
    }
    std::filesystem::remove(path);
}

// --- checkpoints under a fault plan -----------------------------------------

TEST(ResumeEquivalenceFaults, MidPlanCheckpointResumesRemainingFaults) {
    // Checkpoint *inside* a silence window, after a crash was applied, with
    // a rejoin and a reset still pending: the resumed run must hold the
    // silence to its end and fire the remaining faults at identical steps.
    ScopedHybridOptions guard;
    inject_hybrid_table();
    const std::size_t n = 128;
    const std::uint64_t seed = 5;
    const auto budget = static_cast<StepCount>(n) * n * 50;
    FaultPlan plan;
    plan.add(1.0, FaultAction::crash_fraction(0.25));      // step 128
    plan.add(4.0, FaultAction::transient_silence(2.0));    // steps [512, 768)
    plan.add(8.0, FaultAction::rejoin_count(32));          // step 1024
    plan.add(12.0, FaultAction::reset_fraction(0.5));      // step 1536

    const EngineKind engines[] = {EngineKind::agent, EngineKind::batched,
                                  EngineKind::gillespie, EngineKind::hybrid};
    for (const EngineKind engine : engines) {
        const ProtocolRegistry& registry = ProtocolRegistry::instance();
        const auto reference = registry.make_simulation(
            "pll", n, seed, engine, BatchMode::automatic, /*threads=*/1);
        reference->set_fault_plan(plan);
        (void)reference->run_for(600);  // mid-silence: crash + silence applied
        ASSERT_EQ(reference->faults_applied(), 2U)
            << "on engine " << to_string(engine);

        const std::string path =
            temp_path(std::string("ppsim_resume_faults_") +
                      std::string(to_string(engine)) + ".ppck");
        reference->write_checkpoint(path);

        const auto resumed = registry.resume_simulation(path);
        EXPECT_EQ(resumed->faults_applied(), 2U);
        EXPECT_EQ(resumed->fault_count(), 4U);
        EXPECT_EQ(resumed->fault_initial_population(), n);
        expect_same_run_state(*resumed, *reference);

        (void)reference->run_until_one_leader(budget);
        (void)resumed->run_until_one_leader(budget);
        EXPECT_EQ(resumed->faults_applied(), 4U)
            << "on engine " << to_string(engine);
        expect_same_run_state(*resumed, *reference);
        std::filesystem::remove(path);
    }
}

// --- periodic cadence checkpoints -------------------------------------------

TEST(ResumeEquivalencePeriodic, CadenceCheckpointResumesBitIdentically) {
    // set_checkpoint(path, every): the run rewrites `path` at every cadence
    // multiple. Resuming the last write and continuing on the same cadence
    // matches the reference continuing in-process (the cadence is part of
    // the stream contract — both runs slice rounds at the same multiples).
    const std::size_t n = 128;
    const StepCount cadence = 256;
    const std::string path = temp_path("ppsim_resume_periodic.ppck");
    const std::string path2 = temp_path("ppsim_resume_periodic_b.ppck");
    const ProtocolRegistry& registry = ProtocolRegistry::instance();

    const auto reference = registry.make_simulation(
        "pll", n, /*seed=*/4242, EngineKind::batched, BatchMode::pairwise, 1);
    reference->set_checkpoint(path, cadence);
    (void)reference->run_for(1024);  // writes at 256, 512, 768, 1024
    ASSERT_TRUE(std::filesystem::exists(path));

    const auto resumed = registry.resume_simulation(path);
    EXPECT_EQ(resumed->steps(), 1024U);  // the last cadence multiple
    expect_same_run_state(*resumed, *reference);

    resumed->set_checkpoint(path2, cadence);
    (void)reference->run_for(512);
    (void)resumed->run_for(512);
    expect_same_run_state(*resumed, *reference);
    std::filesystem::remove(path);
    std::filesystem::remove(path2);
}

// --- observers across the resume boundary -----------------------------------

TEST(ResumeEquivalenceObservers, PendingDeadlineFiresOnceAtTheExactStep) {
    // Deadline still ahead of the checkpoint: the resumed run must fire it
    // exactly once, at the same step as the uninterrupted run.
    const std::size_t n = 128;
    const double deadline_time = 8.0;  // step 1024 > pause 600
    const auto budget = static_cast<StepCount>(n) * n * 50;
    const ProtocolRegistry& registry = ProtocolRegistry::instance();

    const auto reference = registry.make_simulation(
        "pll", n, /*seed=*/9, EngineKind::batched, BatchMode::pairwise, 1);
    DeadlineObserver reference_obs(deadline_time, n);
    reference->add_observer(reference_obs);
    (void)reference->run_for(600);
    ASSERT_FALSE(reference_obs.report().has_value());

    const std::string path = temp_path("ppsim_resume_deadline_pending.ppck");
    reference->write_checkpoint(path);

    std::string payload;
    const CheckpointHeader header = load_checkpoint(path, payload);
    const auto resumed = registry.make_simulation(header);
    DeadlineObserver resumed_obs(deadline_time, n);
    resumed->add_observer(resumed_obs);  // attach before restoring
    resumed->restore_checkpoint_file(path);
    EXPECT_FALSE(resumed_obs.report().has_value());

    (void)reference->run_until_one_leader(budget);
    (void)resumed->run_until_one_leader(budget);
    ASSERT_TRUE(reference_obs.report().has_value());
    ASSERT_TRUE(resumed_obs.report().has_value());
    EXPECT_EQ(resumed_obs.report()->step, reference_obs.report()->step);
    EXPECT_EQ(resumed_obs.report()->leader_count,
              reference_obs.report()->leader_count);
    EXPECT_EQ(resumed_obs.report()->live_states, reference_obs.report()->live_states);
    EXPECT_EQ(resumed_obs.report()->reached_deadline,
              reference_obs.report()->reached_deadline);
    EXPECT_EQ(resumed_obs.report()->stabilized, reference_obs.report()->stabilized);
    expect_same_run_state(*resumed, *reference);
    std::filesystem::remove(path);
}

TEST(ResumeEquivalenceObservers, FiredDeadlineDoesNotFireAgainAfterResume) {
    // Deadline already behind the checkpoint: the restored observer carries
    // the report and must never record a second one.
    const std::size_t n = 128;
    const double deadline_time = 2.0;  // step 256 < pause 600
    const auto budget = static_cast<StepCount>(n) * n * 50;
    const ProtocolRegistry& registry = ProtocolRegistry::instance();

    const auto reference = registry.make_simulation(
        "pll", n, /*seed=*/9, EngineKind::agent, BatchMode::automatic, 1);
    DeadlineObserver reference_obs(deadline_time, n);
    reference->add_observer(reference_obs);
    (void)reference->run_for(600);
    ASSERT_TRUE(reference_obs.report().has_value());
    ASSERT_EQ(reference_obs.report()->step, 256U);

    const std::string path = temp_path("ppsim_resume_deadline_fired.ppck");
    reference->write_checkpoint(path);

    std::string payload;
    const CheckpointHeader header = load_checkpoint(path, payload);
    const auto resumed = registry.make_simulation(header);
    DeadlineObserver resumed_obs(deadline_time, n);
    resumed->add_observer(resumed_obs);
    resumed->restore_checkpoint_file(path);
    ASSERT_TRUE(resumed_obs.report().has_value());
    EXPECT_EQ(resumed_obs.report()->step, 256U);
    EXPECT_EQ(resumed_obs.report()->leader_count,
              reference_obs.report()->leader_count);

    (void)reference->run_until_one_leader(budget);
    (void)resumed->run_until_one_leader(budget);
    // Still the original report — fired exactly once across the boundary.
    EXPECT_EQ(resumed_obs.report()->step, 256U);
    EXPECT_EQ(reference_obs.report()->step, 256U);
    expect_same_run_state(*resumed, *reference);
    std::filesystem::remove(path);
}

TEST(ResumeEquivalenceObservers, RecoveryObserverResolvesIdenticallyAcrossResume) {
    const std::size_t n = 128;
    const auto budget = static_cast<StepCount>(n) * n * 50;
    FaultPlan plan;
    plan.add(1.0, FaultAction::crash_fraction(0.25));  // step 128
    plan.add(10.0, FaultAction::reset_fraction(0.5));  // step 1280
    const ProtocolRegistry& registry = ProtocolRegistry::instance();

    const auto reference = registry.make_simulation(
        "pll", n, /*seed=*/31, EngineKind::batched, BatchMode::pairwise, 1);
    reference->set_fault_plan(plan);
    RecoveryObserver reference_obs(n);
    reference->add_observer(reference_obs);
    (void)reference->run_for(600);  // first fault applied, second pending
    ASSERT_EQ(reference_obs.records().size(), 1U);

    const std::string path = temp_path("ppsim_resume_recovery.ppck");
    reference->write_checkpoint(path);

    std::string payload;
    const CheckpointHeader header = load_checkpoint(path, payload);
    const auto resumed = registry.make_simulation(header);
    RecoveryObserver resumed_obs(n);
    resumed->add_observer(resumed_obs);
    resumed->restore_checkpoint_file(path);
    ASSERT_EQ(resumed_obs.records().size(), 1U);
    EXPECT_EQ(resumed_obs.records()[0].fault_step,
              reference_obs.records()[0].fault_step);

    (void)reference->run_until_one_leader(budget);
    (void)resumed->run_until_one_leader(budget);
    ASSERT_EQ(resumed_obs.records().size(), reference_obs.records().size());
    for (std::size_t i = 0; i < resumed_obs.records().size(); ++i) {
        EXPECT_EQ(resumed_obs.records()[i].fault_index,
                  reference_obs.records()[i].fault_index);
        EXPECT_EQ(resumed_obs.records()[i].fault_step,
                  reference_obs.records()[i].fault_step);
        EXPECT_EQ(resumed_obs.records()[i].recovery_step,
                  reference_obs.records()[i].recovery_step);
    }
    expect_same_run_state(*resumed, *reference);
    std::filesystem::remove(path);
}

// --- mismatched resumes fail loudly -----------------------------------------

TEST(ResumeEquivalenceRejects, MismatchedSimulationOrObserversAreRejected) {
    const std::size_t n = 64;
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const auto original = registry.make_simulation(
        "pll", n, /*seed=*/1, EngineKind::batched, BatchMode::pairwise, 1);
    (void)original->run_for(200);
    const std::string path = temp_path("ppsim_resume_mismatch.ppck");
    original->write_checkpoint(path);

    // Wrong protocol.
    const auto wrong_protocol = registry.make_simulation(
        "lottery", n, 1, EngineKind::batched, BatchMode::pairwise, 1);
    EXPECT_THROW(wrong_protocol->restore_checkpoint_file(path), InvalidArgument);

    // Wrong engine.
    const auto wrong_engine = registry.make_simulation(
        "pll", n, 1, EngineKind::gillespie, BatchMode::automatic, 1);
    EXPECT_THROW(wrong_engine->restore_checkpoint_file(path), InvalidArgument);

    // Wrong batch mode.
    const auto wrong_mode = registry.make_simulation(
        "pll", n, 1, EngineKind::batched, BatchMode::bulk, 1);
    EXPECT_THROW(wrong_mode->restore_checkpoint_file(path), InvalidArgument);

    // Observer-count mismatch: the checkpoint has none attached.
    const auto extra_observer = registry.make_simulation(
        "pll", n, 1, EngineKind::batched, BatchMode::pairwise, 1);
    DeadlineObserver obs(1.0, n);
    extra_observer->add_observer(obs);
    EXPECT_THROW(extra_observer->restore_checkpoint_file(path), InvalidArgument);

    std::filesystem::remove(path);
}

}  // namespace
}  // namespace ppsim
