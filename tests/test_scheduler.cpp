// Unit tests for schedulers (src/core/scheduler.hpp): the uniformly random
// scheduler's distribution, and record/replay determinism.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/scheduler.hpp"

namespace ppsim {
namespace {

TEST(UniformScheduler, RejectsDegeneratePopulations) {
    EXPECT_THROW(UniformScheduler(0, 1), InvalidArgument);
    EXPECT_THROW(UniformScheduler(1, 1), InvalidArgument);
    EXPECT_NO_THROW(UniformScheduler(2, 1));
}

TEST(UniformScheduler, ProducesDistinctAgentsInRange) {
    UniformScheduler scheduler(5, 42);
    for (int i = 0; i < 10000; ++i) {
        const Interaction ia = scheduler.next();
        EXPECT_LT(ia.initiator, 5U);
        EXPECT_LT(ia.responder, 5U);
        EXPECT_NE(ia.initiator, ia.responder);
    }
}

TEST(UniformScheduler, EqualSeedsGiveEqualSchedules) {
    UniformScheduler a(10, 7);
    UniformScheduler b(10, 7);
    for (int i = 0; i < 1000; ++i) {
        const Interaction ia = a.next();
        const Interaction ib = b.next();
        EXPECT_EQ(ia, ib);
    }
}

// The model requires every ordered pair (u, v), u != v, with probability
// 1/(n(n−1)). Check all 12 ordered pairs of n = 4 stay within 10% of uniform
// over a large sample — this is what makes the role-based coin flips of PLL
// fair, so it deserves a direct test.
TEST(UniformScheduler, OrderedPairsAreUniform) {
    const std::size_t n = 4;
    UniformScheduler scheduler(n, 1234);
    std::map<std::pair<AgentId, AgentId>, int> counts;
    const int trials = 240000;
    for (int i = 0; i < trials; ++i) {
        const Interaction ia = scheduler.next();
        ++counts[{ia.initiator, ia.responder}];
    }
    EXPECT_EQ(counts.size(), n * (n - 1));
    const double expected = static_cast<double>(trials) / (n * (n - 1));
    for (const auto& [pair, count] : counts) {
        EXPECT_NEAR(count, expected, 0.1 * expected)
            << "pair (" << pair.first << "," << pair.second << ")";
    }
}

// Both orderings of each unordered pair must be equally likely: this is the
// initiator-coin fairness property (§3.1.1 of the paper).
TEST(UniformScheduler, RolesWithinPairsAreFair) {
    const std::size_t n = 6;
    UniformScheduler scheduler(n, 99);
    int forward = 0;
    int backward = 0;
    for (int i = 0; i < 200000; ++i) {
        const Interaction ia = scheduler.next();
        if (ia.initiator == 0 && ia.responder == 1) ++forward;
        if (ia.initiator == 1 && ia.responder == 0) ++backward;
    }
    const double total = forward + backward;
    ASSERT_GT(total, 0);
    EXPECT_NEAR(forward / total, 0.5, 0.05);
}

TEST(RecordedSchedule, AppendsAndIndexes) {
    RecordedSchedule schedule;
    EXPECT_TRUE(schedule.empty());
    schedule.append(0, 1);
    schedule.append(Interaction{2, 3});
    EXPECT_EQ(schedule.size(), 2U);
    EXPECT_EQ(schedule[0], (Interaction{0, 1}));
    EXPECT_EQ(schedule[1], (Interaction{2, 3}));
}

TEST(RecordedSchedule, ValidateRejectsBadSchedules) {
    RecordedSchedule self_loop;
    self_loop.append(1, 1);
    EXPECT_THROW(self_loop.validate(4), InvalidArgument);

    RecordedSchedule out_of_range;
    out_of_range.append(0, 9);
    EXPECT_THROW(out_of_range.validate(4), InvalidArgument);

    RecordedSchedule good;
    good.append(0, 3);
    EXPECT_NO_THROW(good.validate(4));
}

TEST(RecordedSchedule, ValidateCoversEveryErrorPath) {
    // Out-of-range initiator (not just responder).
    RecordedSchedule bad_initiator;
    bad_initiator.append(7, 1);
    EXPECT_THROW(bad_initiator.validate(4), InvalidArgument);

    // The reported step index names the offending entry, not just the fact.
    RecordedSchedule late_error;
    late_error.append(0, 1);
    late_error.append(1, 2);
    late_error.append(3, 3);  // self-interaction at step 2
    try {
        late_error.validate(4);
        FAIL() << "validate accepted a self-interaction";
    } catch (const InvalidArgument& e) {
        EXPECT_NE(std::string(e.what()).find("step 2"), std::string::npos)
            << "message was: " << e.what();
    }

    // An id equal to n is out of range (ids are 0-based).
    RecordedSchedule boundary;
    boundary.append(0, 4);
    EXPECT_THROW(boundary.validate(4), InvalidArgument);

    // The empty schedule is trivially valid, for any population.
    EXPECT_NO_THROW(RecordedSchedule{}.validate(2));

    // A schedule valid for a large population can be invalid for a smaller one.
    RecordedSchedule shrunk;
    shrunk.append(0, 5);
    EXPECT_NO_THROW(shrunk.validate(8));
    EXPECT_THROW(shrunk.validate(4), InvalidArgument);
}

TEST(ReplayScheduler, ReplaysInOrderAndThrowsWhenExhausted) {
    RecordedSchedule schedule;
    schedule.append(0, 1);
    schedule.append(1, 2);
    ReplayScheduler replay(schedule);
    EXPECT_EQ(replay.remaining(), 2U);
    EXPECT_EQ(replay.next(), (Interaction{0, 1}));
    EXPECT_EQ(replay.next(), (Interaction{1, 2}));
    EXPECT_EQ(replay.remaining(), 0U);
    EXPECT_THROW((void)replay.next(), InvariantViolation);
}

TEST(ReplayScheduler, ExhaustionIsSticky) {
    RecordedSchedule schedule;
    schedule.append(0, 1);
    ReplayScheduler replay(schedule);
    EXPECT_EQ(replay.position(), 0U);
    (void)replay.next();
    EXPECT_EQ(replay.position(), 1U);
    EXPECT_EQ(replay.remaining(), 0U);
    // Every further call keeps throwing; the cursor does not run away.
    EXPECT_THROW((void)replay.next(), InvariantViolation);
    EXPECT_THROW((void)replay.next(), InvariantViolation);
    EXPECT_EQ(replay.position(), 1U);
}

TEST(ReplayScheduler, EmptyScheduleThrowsImmediately) {
    RecordedSchedule empty;
    ReplayScheduler replay(empty);
    EXPECT_EQ(replay.remaining(), 0U);
    EXPECT_THROW((void)replay.next(), InvariantViolation);
}

TEST(RecordingScheduler, CapturesForwardedInteractions) {
    RecordingScheduler<UniformScheduler> recording(UniformScheduler(8, 3));
    std::vector<Interaction> drawn;
    for (int i = 0; i < 50; ++i) drawn.push_back(recording.next());
    ASSERT_EQ(recording.record().size(), drawn.size());
    for (std::size_t i = 0; i < drawn.size(); ++i) {
        EXPECT_EQ(recording.record()[i], drawn[i]);
    }
    // A replay of the record reproduces the run exactly.
    ReplayScheduler replay(recording.record());
    for (const Interaction& ia : drawn) EXPECT_EQ(replay.next(), ia);
}

}  // namespace
}  // namespace ppsim
