// Tests for the type-erased Simulation run layer (src/core/simulation.hpp)
// and the observer subsystem (src/core/observer.hpp):
//
//  * the engine table is the single source of truth for names;
//  * cross-engine seed determinism: the same (protocol, n, seed) gives an
//    identical RunResult on repeat runs, per engine, through the registry's
//    make_simulation factory;
//  * attaching observers to the agent engine does not perturb the run (the
//    chunked loop consumes the identical scheduler stream);
//  * configuration snapshots from agent and batched runs agree on the
//    initial and final state counts;
//  * trajectory recording samples at the requested cadence and always
//    captures the final configuration;
//  * ConvergenceObserver milestones are monotone in the threshold;
//  * the ppsim_sim --trajectory code path emits a valid leader-count time
//    series on both engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <sstream>

#include "analysis/experiment.hpp"
#include "core/observer.hpp"
#include "core/simulation.hpp"
#include "protocols/angluin.hpp"
#include "protocols/registry.hpp"

namespace ppsim {
namespace {

constexpr StepCount kBudget = 50'000'000;

TEST(EngineTable, IsTheSingleSourceOfNames) {
    for (const EngineDescriptor& d : engine_table) {
        EXPECT_EQ(to_string(d.kind), d.name);
        EXPECT_EQ(parse_engine_kind(d.name), d.kind);
        EXPECT_NE(engine_kind_list().find(d.name), std::string::npos);
        EXPECT_FALSE(d.summary.empty());
    }
    EXPECT_THROW((void)parse_engine_kind("warp-drive"), InvalidArgument);
}

TEST(Simulation, FactoryBuildsEitherEngine) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    for (const EngineDescriptor& d : engine_table) {
        const auto sim = registry.make_simulation("pll", 64, 7, d.kind);
        EXPECT_EQ(sim->engine_kind(), d.kind);
        EXPECT_EQ(sim->population_size(), 64U);
        EXPECT_EQ(sim->steps(), 0U);
        EXPECT_EQ(sim->protocol_name(), "pll");
    }
    EXPECT_THROW((void)registry.make_simulation("bogus", 64, 7), InvalidArgument);
}

TEST(Simulation, SeededRunsAreDeterministicPerEngine) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    for (const EngineDescriptor& d : engine_table) {
        for (const char* protocol : {"angluin06", "lottery", "pll"}) {
            const auto run = [&] {
                const auto sim = registry.make_simulation(protocol, 128, 42, d.kind);
                return run_to_single_leader(*sim, kBudget);
            };
            const RunResult a = run();
            const RunResult b = run();
            EXPECT_EQ(a.converged, b.converged) << protocol << "/" << d.name;
            EXPECT_EQ(a.steps, b.steps) << protocol << "/" << d.name;
            EXPECT_EQ(a.leader_count, b.leader_count) << protocol << "/" << d.name;
            EXPECT_EQ(a.stabilization_step, b.stabilization_step)
                << protocol << "/" << d.name;
            EXPECT_TRUE(a.converged) << protocol << "/" << d.name;
        }
    }
}

TEST(Simulation, StepAndRunForAdvanceExactly) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    for (const EngineDescriptor& d : engine_table) {
        const auto sim = registry.make_simulation("angluin06", 64, 5, d.kind);
        (void)sim->step();
        EXPECT_EQ(sim->steps(), 1U) << d.name;
        (void)sim->run_for(999);
        EXPECT_EQ(sim->steps(), 1000U) << d.name;
    }
}

TEST(Simulation, RunToSingleLeaderVerifiesStability) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    for (const EngineDescriptor& d : engine_table) {
        const auto sim = registry.make_simulation("pll", 128, 9, d.kind);
        const RunResult r = run_to_single_leader(*sim, kBudget, 10'000);
        EXPECT_TRUE(r.converged) << d.name;
        EXPECT_EQ(r.leader_count, 1U) << d.name;
    }
}

TEST(Simulation, ObserversDoNotPerturbTheAgentEngine) {
    // The chunked observed loop must consume the identical scheduler stream:
    // same seed with and without observers gives the same RunResult.
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const auto plain = registry.make_simulation("pll", 128, 31, EngineKind::agent);
    const RunResult expected = plain->run_until_one_leader(kBudget);

    const auto observed = registry.make_simulation("pll", 128, 31, EngineKind::agent);
    TrajectoryRecorder recorder(97);  // deliberately odd stride
    observed->add_observer(recorder);
    const RunResult actual = observed->run_until_one_leader(kBudget);

    EXPECT_EQ(expected.steps, actual.steps);
    EXPECT_EQ(expected.stabilization_step, actual.stabilization_step);
    EXPECT_EQ(expected.leader_count, actual.leader_count);
    EXPECT_GE(recorder.points().size(), 2U);
}

TEST(Simulation, SnapshotsAgreeAcrossEnginesAtStartAndEnd) {
    // angluin06's initial and final configurations are deterministic (all
    // leaders; one leader + n−1 followers), so the state-count snapshots of
    // every engine must agree exactly at both ends of a converged run.
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::size_t n = 256;
    ConfigurationSnapshot initial[engine_table.size()];
    ConfigurationSnapshot final_[engine_table.size()];
    for (const EngineDescriptor& d : engine_table) {
        const auto sim = registry.make_simulation("angluin06", n, 11, d.kind);
        initial[static_cast<int>(d.kind)] = sim->state_counts();
        const RunResult r = sim->run_until_one_leader(kBudget);
        ASSERT_TRUE(r.converged) << d.name;
        final_[static_cast<int>(d.kind)] = sim->state_counts();
    }
    for (std::size_t e = 0; e < engine_table.size(); ++e) {
        EXPECT_EQ(initial[e].total(), n);
        EXPECT_EQ(initial[e].leaders(), n);
        ASSERT_EQ(initial[e].counts.size(), 1U);
        EXPECT_EQ(final_[e].total(), n);
        EXPECT_EQ(final_[e].leaders(), 1U);
        ASSERT_EQ(final_[e].counts.size(), 2U);
        EXPECT_EQ(initial[0].counts[0].key, initial[e].counts[0].key);
        for (std::size_t i = 0; i < 2; ++i) {
            EXPECT_EQ(final_[0].counts[i].key, final_[e].counts[i].key);
            EXPECT_EQ(final_[0].counts[i].count, final_[e].counts[i].count);
            EXPECT_EQ(final_[0].counts[i].role, final_[e].counts[i].role);
        }
    }
}

TEST(TrajectoryRecorder, SamplesAtTheRequestedCadence) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    for (const EngineDescriptor& d : engine_table) {
        const auto sim = registry.make_simulation("angluin06", 64, 3, d.kind);
        TrajectoryRecorder recorder(100);
        sim->add_observer(recorder);
        (void)sim->run_for(1000);
        const auto& points = recorder.points();
        ASSERT_EQ(points.size(), 11U) << d.name;  // 0, 100, …, 1000
        for (std::size_t i = 0; i < points.size(); ++i) {
            EXPECT_EQ(points[i].step, 100 * i) << d.name;
            EXPECT_GT(points[i].live_states, 0U) << d.name;
        }
    }
}

TEST(TrajectoryRecorder, StepwiseDrivingHonoursTheStride) {
    // Driving the simulation one step at a time from a caller loop must
    // still sample at the stride, not once per step (finish only fires at
    // the end of run_until_one_leader).
    const auto sim = ProtocolRegistry::instance().make_simulation(
        "angluin06", 64, 29, EngineKind::agent);
    TrajectoryRecorder recorder(10);
    sim->add_observer(recorder);
    for (int i = 0; i < 50; ++i) (void)sim->step();
    ASSERT_EQ(recorder.points().size(), 6U);  // 0, 10, 20, 30, 40, 50
    for (std::size_t i = 0; i < recorder.points().size(); ++i) {
        EXPECT_EQ(recorder.points()[i].step, 10 * i);
    }
}

TEST(TrajectoryRecorder, CatchesUpWhenAttachedAfterAnUnobservedRun) {
    // Attaching a small-stride recorder to a simulation that already ran
    // far must not replay the missed deadlines one stride at a time.
    const auto sim = ProtocolRegistry::instance().make_simulation(
        "angluin06", 64, 23, EngineKind::batched);
    (void)sim->run_for(1'000'000);
    TrajectoryRecorder recorder(10);
    sim->add_observer(recorder);
    (void)sim->run_for(30);
    const auto& points = recorder.points();
    ASSERT_EQ(points.size(), 4U);  // 1'000'000 + {0, 10, 20, 30}
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].step, 1'000'000U + 10 * i);
    }
}

TEST(TrajectoryRecorder, AlwaysCapturesTheFinalConfiguration) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    for (const EngineDescriptor& d : engine_table) {
        const auto sim = registry.make_simulation("angluin06", 128, 7, d.kind);
        TrajectoryRecorder recorder(1 << 20);  // stride far beyond the run
        sim->add_observer(recorder);
        const RunResult r = sim->run_until_one_leader(kBudget);
        ASSERT_TRUE(r.converged) << d.name;
        const auto& points = recorder.points();
        ASSERT_GE(points.size(), 2U) << d.name;
        EXPECT_EQ(points.front().step, 0U) << d.name;
        EXPECT_EQ(points.front().leader_count, 128U) << d.name;
        EXPECT_EQ(points.back().step, sim->steps()) << d.name;
        EXPECT_EQ(points.back().leader_count, 1U) << d.name;
    }
}

TEST(TrajectoryRecorder, WritesCsv) {
    TrajectoryRecorder recorder(10);
    const auto sim =
        ProtocolRegistry::instance().make_simulation("angluin06", 16, 1, EngineKind::agent);
    sim->add_observer(recorder);
    (void)sim->run_for(20);
    std::ostringstream out;
    recorder.write_csv(out);
    const std::string csv = out.str();
    EXPECT_NE(csv.find("step,parallel_time,leader_count,live_states"), std::string::npos);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);  // header + 3 samples
}

TEST(SnapshotRecorder, SnapshotsConserveThePopulation) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    for (const EngineDescriptor& d : engine_table) {
        const auto sim = registry.make_simulation("lottery", 256, 13, d.kind);
        SnapshotRecorder recorder(512);
        sim->add_observer(recorder);
        (void)sim->run_for(4096);
        ASSERT_GE(recorder.snapshots().size(), 3U) << d.name;
        for (const ConfigurationSnapshot& snap : recorder.snapshots()) {
            EXPECT_EQ(snap.total(), 256U) << d.name << " @ step " << snap.step;
        }
        // Snapshot leader tallies must match what the engine reported live.
        EXPECT_EQ(recorder.snapshots().back().leaders(), sim->leader_count()) << d.name;
    }
}

TEST(ConvergenceObserver, MilestonesAreMonotone) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::size_t n = 256;
    for (const EngineDescriptor& d : engine_table) {
        const auto sim = registry.make_simulation("angluin06", n, 17, d.kind);
        ConvergenceObserver milestones(ConvergenceObserver::halving_thresholds(n), 64);
        sim->add_observer(milestones);
        const RunResult r = sim->run_until_one_leader(kBudget);
        ASSERT_TRUE(r.converged) << d.name;
        StepCount previous = 0;
        for (const std::size_t threshold : milestones.thresholds()) {
            const auto reached = milestones.first_step_at_or_below(threshold);
            ASSERT_TRUE(reached.has_value()) << d.name << " threshold " << threshold;
            EXPECT_GE(*reached, previous) << d.name << " threshold " << threshold;
            previous = *reached;
        }
        EXPECT_FALSE(milestones.first_step_at_or_below(12345).has_value());
    }
}

TEST(RecordTrajectory, EmitsAValidSeriesOnBothEngines) {
    // The library path behind `ppsim_sim --trajectory`, for each engine.
    for (const EngineDescriptor& d : engine_table) {
        const TrajectoryRun run =
            record_trajectory("angluin06", 256, 19, kBudget, 64, d.kind);
        ASSERT_TRUE(run.result.converged) << d.name;
        const auto& points = run.points;
        ASSERT_GE(points.size(), 2U) << d.name;
        EXPECT_EQ(points.front().leader_count, 256U) << d.name;
        EXPECT_EQ(points.back().leader_count, 1U) << d.name;
        for (std::size_t i = 1; i < points.size(); ++i) {
            EXPECT_GT(points[i].step, points[i - 1].step) << d.name;
            EXPECT_LE(points[i].leader_count, 256U) << d.name;
        }
    }
}

TEST(SimulationBatchModes, FactoryBuildsEveryModeAndReportsIt) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    for (const BatchModeDescriptor& d : batch_mode_table) {
        const auto sim =
            registry.make_simulation("pll", 64, 7, EngineKind::batched, d.mode);
        EXPECT_EQ(sim->engine_kind(), EngineKind::batched);
        EXPECT_EQ(sim->batch_mode(), d.mode) << d.name;
    }
    // The agent engine has no batches; it reports the auto default and
    // ignores the requested mode.
    const auto agent =
        registry.make_simulation("pll", 64, 7, EngineKind::agent, BatchMode::bulk);
    EXPECT_EQ(agent->batch_mode(), BatchMode::automatic);
}

TEST(SimulationBatchModes, SnapshotsAndObserversAgreeAcrossModesForAllProtocols) {
    // Every registered protocol, every pairing strategy: the initial census
    // must equal the agent engine's exactly, the run must converge to one
    // leader with a conserved population, and the recorded trajectory must
    // be a valid monotone-step series ending at one leader.
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::size_t n = 64;
    for (const std::string& name : registry.names()) {
        const auto agent_sim = registry.make_simulation(name, n, 11, EngineKind::agent);
        const ConfigurationSnapshot agent_initial = agent_sim->state_counts();
        for (const BatchModeDescriptor& d : batch_mode_table) {
            const auto sim =
                registry.make_simulation(name, n, 11, EngineKind::batched, d.mode);
            const ConfigurationSnapshot initial = sim->state_counts();
            ASSERT_EQ(initial.counts.size(), agent_initial.counts.size())
                << name << "/" << d.name;
            for (std::size_t i = 0; i < initial.counts.size(); ++i) {
                EXPECT_EQ(initial.counts[i].key, agent_initial.counts[i].key)
                    << name << "/" << d.name;
                EXPECT_EQ(initial.counts[i].count, agent_initial.counts[i].count)
                    << name << "/" << d.name;
            }
            TrajectoryRecorder recorder(256);
            sim->add_observer(recorder);
            const RunResult r = sim->run_until_one_leader(kBudget);
            ASSERT_TRUE(r.converged) << name << "/" << d.name;
            const ConfigurationSnapshot final_ = sim->state_counts();
            EXPECT_EQ(final_.total(), n) << name << "/" << d.name;
            EXPECT_EQ(final_.leaders(), 1U) << name << "/" << d.name;
            const auto& points = recorder.points();
            ASSERT_GE(points.size(), 2U) << name << "/" << d.name;
            EXPECT_EQ(points.front().step, 0U) << name << "/" << d.name;
            EXPECT_EQ(points.back().leader_count, 1U) << name << "/" << d.name;
            for (std::size_t i = 1; i < points.size(); ++i) {
                EXPECT_GT(points[i].step, points[i - 1].step) << name << "/" << d.name;
            }
        }
    }
}

TEST(SimulationBatchModes, RunSweepHonoursTheConfiguredMode) {
    for (const BatchModeDescriptor& d : batch_mode_table) {
        SweepConfig config;
        config.protocol = "lottery";
        config.sizes = {128};
        config.repetitions = 4;
        config.seed = 0xC0DE;
        config.engine = EngineKind::batched;
        config.batch_mode = d.mode;
        const SweepResult result = run_sweep(config);
        EXPECT_EQ(result.batch_mode, d.mode) << d.name;
        ASSERT_EQ(result.points.size(), 1U) << d.name;
        EXPECT_EQ(result.points[0].failures, 0U) << d.name;
    }
}

TEST(SimulationBatchModes, RecordTrajectoryRunsUnderForcedBulk) {
    const TrajectoryRun run = record_trajectory("lottery", 256, 19, kBudget, 64,
                                                EngineKind::batched,
                                                /*record_live_states=*/true,
                                                BatchMode::bulk);
    ASSERT_TRUE(run.result.converged);
    ASSERT_GE(run.points.size(), 2U);
    EXPECT_EQ(run.points.back().leader_count, 1U);
}

TEST(RunSweep, CapturesPerRepetitionTrajectories) {
    SweepConfig config;
    config.protocol = "angluin06";
    config.sizes = {64};
    config.repetitions = 4;
    config.seed = 0xF00D;
    config.engine = EngineKind::batched;
    config.trajectory_stride = 64;
    const SweepResult result = run_sweep(config);
    ASSERT_EQ(result.points.size(), 1U);
    const SweepPoint& point = result.points[0];
    ASSERT_EQ(point.trajectories.size(), 4U);
    for (std::size_t rep = 0; rep < point.trajectories.size(); ++rep) {
        EXPECT_EQ(point.trajectories[rep].rep, rep);  // sorted by repetition
        const auto& points = point.trajectories[rep].points;
        ASSERT_GE(points.size(), 2U);
        EXPECT_EQ(points.front().leader_count, 64U);
        EXPECT_EQ(points.back().leader_count, 1U);
    }
}

TEST(RunSweep, CustomObserverFactoryIsAttachedPerRepetition) {
    SweepConfig config;
    config.protocol = "angluin06";
    config.sizes = {64};
    config.repetitions = 3;
    config.seed = 0xBEE;
    std::atomic<int> built{0};
    config.make_observer = [&built](std::size_t, std::size_t) {
        ++built;
        return std::make_unique<TrajectoryRecorder>(1024);
    };
    (void)run_sweep(config);
    EXPECT_EQ(built.load(), 3);
}

}  // namespace
}  // namespace ppsim
