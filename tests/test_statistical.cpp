// Cross-engine statistical-agreement harness: the three back-ends (agent,
// batched, gillespie) simulate the same Markov chain through entirely
// different code paths — per-interaction replay, collision-free batching
// with hypergeometric multisets, and reaction-rate SSA/τ-leaping. This suite
// compares their stabilisation-time *distributions* with the two-sample
// Kolmogorov–Smirnov test (src/core/stats.hpp) over hundreds of seeded
// repetitions per protocol:
//
//  * at small n (64) the gillespie engine is exact (below its leap
//    threshold), so all three engines sample the identical distribution and
//    KS must accept — any systematic deviation is an engine bug;
//  * at n = 8192 the gillespie engine τ-leaps, so the comparison bounds the
//    leaping approximation error statistically (pll is the stressor: a wide
//    state profile with every interaction non-null).
//
// All seeds are fixed, so the suite is fully deterministic: the sampled
// distributions — and therefore the p-values — are identical on every run.
// The acceptance threshold of p ≥ 0.001 leaves a wide margin over the
// observed values (≥ 0.05 for every pinned seed set).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/scenario.hpp"
#include "core/observer.hpp"
#include "core/random.hpp"
#include "core/stats.hpp"
#include "protocols/registry.hpp"

namespace ppsim {
namespace {

/// Stabilisation times (parallel-time units) of `reps` seeded elections.
/// `threads` is the count engines' intra-run worker count (shard.hpp).
std::vector<double> stabilization_times(const std::string& protocol, std::size_t n,
                                        EngineKind engine, int reps,
                                        std::uint64_t seed_root, StepCount budget,
                                        std::size_t threads = 1) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) {
        const RunResult r = registry.run_election(protocol, n, derive_seed(seed_root, i),
                                                  budget, engine, BatchMode::automatic,
                                                  /*faults=*/{}, threads);
        if (!r.converged || !r.stabilization_step) {
            ADD_FAILURE() << protocol << " rep " << i << " on " << to_string(engine)
                          << " missed the budget";
            return {};
        }
        out.push_back(r.stabilization_parallel_time(n));
    }
    return out;
}

/// Acceptance level. KS p-values here are deterministic (fixed seeds), so
/// this is a regression bar, not a false-positive rate: the committed seed
/// sets all pass with p ≥ 0.05, and a real distributional bug (e.g. a
/// mis-weighted sampler) drives p below 1e-6 at these sample sizes.
constexpr double ks_alpha = 0.001;

void expect_agreement(const std::string& protocol, std::size_t n, int reps,
                      StepCount budget, EngineKind lhs, EngineKind rhs,
                      std::uint64_t root_lhs, std::uint64_t root_rhs) {
    std::vector<double> a = stabilization_times(protocol, n, lhs, reps, root_lhs, budget);
    std::vector<double> b = stabilization_times(protocol, n, rhs, reps, root_rhs, budget);
    if (a.empty() || b.empty()) return;  // ASSERT in helper already failed the test
    const KsTestResult ks = ks_two_sample(a, b);
    EXPECT_GE(ks.p_value, ks_alpha)
        << protocol << " @ n=" << n << ": " << to_string(lhs) << " vs " << to_string(rhs)
        << " disagree (D=" << ks.statistic << ", p=" << ks.p_value << ")";
}

// --- exact regime: all three engines sample the identical distribution ------

class SmallPopulationAgreement : public ::testing::TestWithParam<const char*> {};

TEST_P(SmallPopulationAgreement, AgentVsBatched) {
    const std::size_t n = 64;
    expect_agreement(GetParam(), n, 250, static_cast<StepCount>(n) * n * 50,
                     EngineKind::agent, EngineKind::batched, 11, 22);
}

TEST_P(SmallPopulationAgreement, AgentVsGillespie) {
    const std::size_t n = 64;
    expect_agreement(GetParam(), n, 250, static_cast<StepCount>(n) * n * 50,
                     EngineKind::agent, EngineKind::gillespie, 11, 33);
}

TEST_P(SmallPopulationAgreement, BatchedVsGillespie) {
    const std::size_t n = 64;
    expect_agreement(GetParam(), n, 250, static_cast<StepCount>(n) * n * 50,
                     EngineKind::batched, EngineKind::gillespie, 22, 33);
}

INSTANTIATE_TEST_SUITE_P(Protocols, SmallPopulationAgreement,
                         ::testing::Values("angluin06", "lottery", "pll",
                                           "rated_epidemic"),
                         [](const auto& info) { return std::string(info.param); });

// --- rate-annotated protocols: thinning vs propensity weights ----------------
//
// rated_epidemic (above) and rated_election run the *thinned* chain of
// protocol.hpp through three different mechanisms: per-step rejection on the
// agent engine, per-cell binomial thinning on the batched engine, and
// rate-scaled propensities (no rejection at all) on the gillespie engine. KS
// agreement of their stabilisation-time distributions is the end-to-end
// check that all three implement the same chain. rated_election's lottery
// phases dilate by up to max_rate = 9 in steps, so its budget is wider than
// the shared suite's.

class RatedElectionAgreement : public ::testing::Test {
protected:
    static constexpr std::size_t n = 64;
    static constexpr int reps = 250;
    static constexpr StepCount budget = static_cast<StepCount>(n) * n * 500;
};

TEST_F(RatedElectionAgreement, AgentVsGillespie) {
    expect_agreement("rated_election", n, reps, budget, EngineKind::agent,
                     EngineKind::gillespie, 11, 33);
}

TEST_F(RatedElectionAgreement, AgentVsBatched) {
    expect_agreement("rated_election", n, reps, budget, EngineKind::agent,
                     EngineKind::batched, 11, 22);
}

TEST_F(RatedElectionAgreement, BatchedVsGillespie) {
    expect_agreement("rated_election", n, reps, budget, EngineKind::batched,
                     EngineKind::gillespie, 22, 33);
}

// --- leap regime: bounds the τ-leaping approximation statistically ----------

TEST(LeapRegimeAgreement, PllGillespieMatchesBatchedAt8192) {
    // n = 8192 is above GillespieEngine::leap_min_population, so virtually
    // every gillespie step here goes through the τ-leap path. pll is the
    // wide-state stressor: every interaction non-null, thousands of live
    // timer×colour states mid-run.
    const std::size_t n = 8192;
    expect_agreement("pll", n, 150, static_cast<StepCount>(n) * n * 4,
                     EngineKind::gillespie, EngineKind::batched, 101, 202);
}

TEST(LeapRegimeAgreement, LotteryGillespieMatchesBatchedAt8192) {
    // Heavy-tailed stabilisation (lottery ties need Θ(n²) steps to resolve):
    // KS is distribution-free, so the tail mass must match too — this is
    // where the near-stabilisation exact-SSA fallback earns its keep.
    const std::size_t n = 8192;
    expect_agreement("lottery", n, 120, static_cast<StepCount>(n) * n * 8,
                     EngineKind::gillespie, EngineKind::batched, 101, 202);
}

TEST(LeapRegimeAgreement, RatedElectionGillespieMatchesBatchedAt8192) {
    // The rate-annotated stressor in the leap regime: gillespie's leaps thin
    // each cell binomially while its exact-SSA fallback folds the rates into
    // the channel weights; the batched engine thins against max_rate
    // throughout. The cold-bulk dilation (follower pairs at 1/9) makes the
    // epidemic phases rate-dominated, so a mis-weighted thinning path shifts
    // the whole distribution and KS rejects hard.
    const std::size_t n = 8192;
    expect_agreement("rated_election", n, 120, static_cast<StepCount>(n) * n * 8,
                     EngineKind::gillespie, EngineKind::batched, 101, 202);
}

// --- intra-run sharding: thread count must not shift the sampled chain ------
//
// An engine built with threads > 1 draws its sharded rounds from fresh
// per-(seed, round, shard) streams, so individual realisations differ from
// the sequential run whenever a round shards — but the sampled
// stabilisation-time distribution must not. Thread counts are chosen per
// cell so the sharded paths genuinely engage at n = 8192: pll crosses the
// sampling threshold (threads × 8 live states) at threads = 4 but not 8
// (its live profile tops out around 56 states), and rated_election's
// pairwise batches cross the group threshold at either, exercising the
// rated thinning on shard streams. A mis-partitioned subtotal chain, a
// re-used shard stream or a lost delta merge shifts the distribution and KS
// rejects. The gillespie cell loop additionally pre-thins *before* the
// availability clamp when sharded (the sequential loop thins after), an
// approximation-level reordering this suite bounds statistically.

void expect_thread_agreement(const std::string& protocol, std::size_t n, int reps,
                             StepCount budget, EngineKind engine, std::size_t threads_hi,
                             std::uint64_t root_lhs, std::uint64_t root_rhs) {
    std::vector<double> a =
        stabilization_times(protocol, n, engine, reps, root_lhs, budget, /*threads=*/1);
    std::vector<double> b =
        stabilization_times(protocol, n, engine, reps, root_rhs, budget, threads_hi);
    if (a.empty() || b.empty()) return;  // helper already failed the test
    const KsTestResult ks = ks_two_sample(a, b);
    EXPECT_GE(ks.p_value, ks_alpha)
        << protocol << " @ n=" << n << " on " << to_string(engine)
        << ": threads=1 vs threads=" << threads_hi << " disagree (D=" << ks.statistic
        << ", p=" << ks.p_value << ")";
}

TEST(ThreadShardingAgreement, PllBatchedAt8192) {
    const std::size_t n = 8192;
    expect_thread_agreement("pll", n, 150, static_cast<StepCount>(n) * n * 4,
                            EngineKind::batched, 4, 601, 602);
}

TEST(ThreadShardingAgreement, PllGillespieAt8192) {
    const std::size_t n = 8192;
    expect_thread_agreement("pll", n, 150, static_cast<StepCount>(n) * n * 4,
                            EngineKind::gillespie, 4, 601, 602);
}

TEST(ThreadShardingAgreement, RatedElectionBatchedAt8192) {
    const std::size_t n = 8192;
    expect_thread_agreement("rated_election", n, 120, static_cast<StepCount>(n) * n * 8,
                            EngineKind::batched, 4, 631, 632);
}

TEST(ThreadShardingAgreement, RatedElectionGillespieAt8192) {
    const std::size_t n = 8192;
    expect_thread_agreement("rated_election", n, 120, static_cast<StepCount>(n) * n * 8,
                            EngineKind::gillespie, 8, 631, 632);
}

TEST(ThreadShardingAgreement, RatedEpidemicBatchedAt8192) {
    // Narrow state profile (three states) but a heavy Θ(n²) endgame, so the
    // budget is wide and the rep count modest. Under automatic pairing the
    // 3-state contingency table keeps group counts in single digits, so most
    // rounds fall back — this cell guards exactly that boundary, where
    // sharded and sequential rounds interleave within one run.
    const std::size_t n = 8192;
    expect_thread_agreement("rated_epidemic", n, 60, static_cast<StepCount>(n) * n * 16,
                            EngineKind::batched, 8, 611, 612);
}

TEST(ThreadShardingAgreement, Angluin06BatchedAt8192) {
    // Narrowest profile of all (two to three live states): with matching
    // seed roots both sides sample byte-identical realisations whenever no
    // round shards, and KS accepts trivially. This is the distribution-level
    // restatement of the bit-identity contract pinned in
    // test_parallel_engines.cpp, kept here so the fallback path stays in the
    // agreement matrix. Fewer reps: angluin06 needs Θ(n²) interactions.
    const std::size_t n = 8192;
    expect_thread_agreement("angluin06", n, 40, static_cast<StepCount>(n) * n * 50,
                            EngineKind::batched, 8, 621, 621);
}

// --- post-fault recovery agreement ------------------------------------------
//
// The fault pipeline (core/fault.hpp) must not perturb the sampled chain
// beyond the surgery itself: after the churn_election scenario's final reset
// wave, the time to re-stabilise is a random variable of the same Markov
// chain on all three engines. These suites compare the recovery-time
// distributions of the *last* fault per repetition — the full crash → rejoin
// → reset history feeds into it, so a biased victim sampler, a mis-anchored
// fault step, or a broken post-fault leader census on any engine shifts the
// distribution and KS rejects.

/// Recovery times (parallel-time units) of the final churn_election fault
/// over `reps` seeded runs.
std::vector<double> churn_recovery_times(std::size_t n, EngineKind engine, int reps,
                                         std::uint64_t seed_root, StepCount budget) {
    const ChaosScenario& scenario = find_chaos_scenario("churn_election");
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) {
        const auto sim = registry.make_simulation(scenario.protocol, n,
                                                  derive_seed(seed_root, i), engine);
        sim->set_fault_plan(scenario.make_plan(n));
        RecoveryObserver recovery(n);
        sim->add_observer(recovery);
        const RunResult r = sim->run_until_one_leader(budget);
        if (!r.converged || recovery.records().empty() ||
            !recovery.records().back().recovery_step) {
            ADD_FAILURE() << "churn_election rep " << i << " on " << to_string(engine)
                          << " never recovered within the budget";
            return {};
        }
        out.push_back(*recovery.records().back().recovery_time(n));
    }
    return out;
}

void expect_recovery_agreement(std::size_t n, int reps, StepCount budget,
                               EngineKind lhs, EngineKind rhs,
                               std::uint64_t root_lhs, std::uint64_t root_rhs) {
    std::vector<double> a = churn_recovery_times(n, lhs, reps, root_lhs, budget);
    std::vector<double> b = churn_recovery_times(n, rhs, reps, root_rhs, budget);
    if (a.empty() || b.empty()) return;  // helper already failed the test
    const KsTestResult ks = ks_two_sample(a, b);
    EXPECT_GE(ks.p_value, ks_alpha)
        << "churn_election recovery @ n=" << n << ": " << to_string(lhs) << " vs "
        << to_string(rhs) << " disagree (D=" << ks.statistic << ", p=" << ks.p_value
        << ")";
}

TEST(ChurnRecoveryAgreement, AgentVsBatchedAt64) {
    const std::size_t n = 64;
    expect_recovery_agreement(n, 250, static_cast<StepCount>(n) * n * 300,
                              EngineKind::agent, EngineKind::batched, 401, 402);
}

TEST(ChurnRecoveryAgreement, AgentVsGillespieAt64) {
    const std::size_t n = 64;
    expect_recovery_agreement(n, 250, static_cast<StepCount>(n) * n * 300,
                              EngineKind::agent, EngineKind::gillespie, 401, 403);
}

TEST(ChurnRecoveryAgreement, BatchedVsGillespieAt64) {
    const std::size_t n = 64;
    expect_recovery_agreement(n, 250, static_cast<StepCount>(n) * n * 300,
                              EngineKind::batched, EngineKind::gillespie, 402, 403);
}

TEST(ChurnRecoveryAgreement, GillespieMatchesBatchedAt8192) {
    // The leap regime: post-fault recovery under τ-leaping must match the
    // batched engine's exact hypergeometric batches. The reset wave drops the
    // population back into a wide contention profile mid-run, which is
    // exactly where a leaping bias would concentrate.
    const std::size_t n = 8192;
    expect_recovery_agreement(n, 120, static_cast<StepCount>(n) * n * 8,
                              EngineKind::gillespie, EngineKind::batched, 501, 502);
}

}  // namespace
}  // namespace ppsim
