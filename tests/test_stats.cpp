// Unit tests for the statistics toolkit (src/core/stats.hpp).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/stats.hpp"
#include "core/common.hpp"

namespace ppsim {
namespace {

TEST(RunningStats, MatchesHandComputedMoments) {
    RunningStats stats;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
    EXPECT_EQ(stats.count(), 8U);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    // Sample variance of the classic dataset: Σ(x−5)² = 32, / 7.
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingletonAreSafe) {
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0U);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.sem(), 0.0);
    stats.add(3.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSequentialAccumulation) {
    RunningStats all;
    RunningStats left;
    RunningStats right;
    for (int i = 0; i < 100; ++i) {
        const double x = std::sin(i) * 10.0;
        all.add(x);
        (i % 2 == 0 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySidesIsIdentity) {
    RunningStats a;
    a.add(1.0);
    a.add(2.0);
    RunningStats empty;
    RunningStats b = a;
    b.merge(empty);
    EXPECT_DOUBLE_EQ(b.mean(), a.mean());
    empty.merge(a);
    EXPECT_DOUBLE_EQ(empty.mean(), a.mean());
}

TEST(RunningStats, CiHalfWidthLevels) {
    RunningStats stats;
    for (int i = 0; i < 100; ++i) stats.add(static_cast<double>(i % 10));
    const double ci90 = stats.ci_half_width(0.90);
    const double ci95 = stats.ci_half_width(0.95);
    const double ci99 = stats.ci_half_width(0.99);
    EXPECT_LT(ci90, ci95);
    EXPECT_LT(ci95, ci99);
    EXPECT_THROW(stats.ci_half_width(0.5), InvalidArgument);
}

TEST(SampleSet, PercentilesInterpolate) {
    SampleSet s;
    for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 40.0);
    EXPECT_DOUBLE_EQ(s.median(), 25.0);
    EXPECT_DOUBLE_EQ(s.percentile(25.0), 17.5);
}

TEST(SampleSet, GuardsDegenerateInput) {
    SampleSet s;
    EXPECT_THROW((void)s.percentile(50.0), InvalidArgument);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 5.0);
    EXPECT_THROW((void)s.percentile(101.0), InvalidArgument);
}

TEST(SampleSet, MeanAndVarianceAgreeWithRunningStats) {
    SampleSet s;
    RunningStats r;
    for (int i = 0; i < 57; ++i) {
        const double x = std::cos(i) * 3.0 + i;
        s.add(x);
        r.add(x);
    }
    EXPECT_NEAR(s.mean(), r.mean(), 1e-9);
    EXPECT_NEAR(s.variance(), r.variance(), 1e-9);
}

TEST(Histogram, BinsAndSaturatesEdges) {
    Histogram h(0.0, 10.0, 5);
    h.add(-100.0);  // clamps into first bin
    h.add(0.5);
    h.add(9.9);
    h.add(100.0);  // clamps into last bin
    EXPECT_EQ(h.total(), 4U);
    EXPECT_EQ(h.bin(0), 2U);
    EXPECT_EQ(h.bin(4), 2U);
    EXPECT_DOUBLE_EQ(h.bin_lower(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bin_upper(4), 10.0);
    EXPECT_FALSE(h.render().empty());
}

TEST(Histogram, RejectsBadConstruction) {
    EXPECT_THROW(Histogram(0.0, 0.0, 5), InvalidArgument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

TEST(FrequencyTable, CountsAndFractions) {
    FrequencyTable t;
    t.add(1);
    t.add(1);
    t.add(3);
    EXPECT_EQ(t.total(), 3U);
    EXPECT_EQ(t.count(1), 2U);
    EXPECT_EQ(t.count(2), 0U);
    EXPECT_EQ(t.count(99), 0U);
    EXPECT_DOUBLE_EQ(t.fraction(1), 2.0 / 3.0);
    EXPECT_EQ(t.max_key(), 3U);
}

TEST(LinearFit, RecoversExactLine) {
    std::vector<double> x{1, 2, 3, 4, 5};
    std::vector<double> y{3, 5, 7, 9, 11};  // y = 2x + 1
    const LinearFit fit = fit_linear(x, y);
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, RejectsMismatchedOrTinyInput) {
    std::vector<double> x{1, 2};
    std::vector<double> y{1};
    EXPECT_THROW((void)fit_linear(x, y), InvalidArgument);
    std::vector<double> one{1};
    EXPECT_THROW((void)fit_linear(one, one), InvalidArgument);
}

TEST(FitLog2, RecoversLogarithmicGrowth) {
    // y = 4·log2(x) + 2 — the shape of Theorem 1's stabilisation time.
    std::vector<double> x{16, 64, 256, 1024, 4096};
    std::vector<double> y;
    for (double v : x) y.push_back(4.0 * std::log2(v) + 2.0);
    const LinearFit fit = fit_log2(x, y);
    EXPECT_NEAR(fit.slope, 4.0, 1e-9);
    EXPECT_NEAR(fit.intercept, 2.0, 1e-9);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitPowerLaw, RecoversExponent) {
    // y = 0.5·x^1.0 — the shape of the Ω(n) lower bound on [Ang+06].
    std::vector<double> x{100, 200, 400, 800};
    std::vector<double> y;
    for (double v : x) y.push_back(0.5 * v);
    const LinearFit fit = fit_power_law(x, y);
    EXPECT_NEAR(fit.slope, 1.0, 1e-9);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(WilsonInterval, BracketsTheEstimate) {
    const ProportionCi ci = wilson_interval(50, 100);
    EXPECT_NEAR(ci.estimate, 0.5, 1e-12);
    EXPECT_LT(ci.lower, 0.5);
    EXPECT_GT(ci.upper, 0.5);
    EXPECT_GT(ci.lower, 0.38);
    EXPECT_LT(ci.upper, 0.62);
}

TEST(WilsonInterval, HandlesExtremesAndRejectsBadInput) {
    const ProportionCi none = wilson_interval(0, 50);
    EXPECT_DOUBLE_EQ(none.estimate, 0.0);
    EXPECT_GE(none.lower, 0.0);
    EXPECT_GT(none.upper, 0.0);
    const ProportionCi all = wilson_interval(50, 50);
    EXPECT_LE(all.upper, 1.0);
    EXPECT_LT(all.lower, 1.0);
    EXPECT_THROW((void)wilson_interval(1, 0), InvalidArgument);
    EXPECT_THROW((void)wilson_interval(5, 4), InvalidArgument);
}

TEST(KsTest, StatisticMatchesHandComputedCdfGap) {
    // F_a jumps at 1,2,3,4 (¼ each); F_b jumps at 3,4,5,6. The largest CDF
    // gap is at x ∈ [2, 3): F_a = ½, F_b = 0.
    const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> b = {3.0, 4.0, 5.0, 6.0};
    EXPECT_DOUBLE_EQ(ks_statistic(a, b), 0.5);
    // Identical samples have zero distance and p-value 1.
    EXPECT_DOUBLE_EQ(ks_statistic(a, a), 0.0);
    EXPECT_DOUBLE_EQ(ks_two_sample(a, a).p_value, 1.0);
}

TEST(KsTest, TiesAcrossSamplesDoNotInflateTheStatistic) {
    // Every value tied between the samples: the CDFs coincide at every
    // observation point, so D must be 0 (a one-sided walk would report ½).
    const std::vector<double> a = {1.0, 1.0, 2.0};
    const std::vector<double> b = {1.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(ks_statistic(a, b), 0.0);
}

TEST(KsTest, DetectsAShiftedDistribution) {
    // Two large samples offset by one standard-deviation-ish shift: the test
    // must reject at any sane level.
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 400; ++i) {
        const double u = (static_cast<double>(i) + 0.5) / 400.0;
        a.push_back(u);
        b.push_back(u + 0.3);
    }
    const KsTestResult r = ks_two_sample(a, b);
    EXPECT_NEAR(r.statistic, 0.3, 0.01);
    EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTest, AcceptsSamplesFromTheSameDistribution) {
    // Interleaved quantiles of the same uniform grid: tiny D, p ≈ 1.
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 500; ++i) {
        const double u = (static_cast<double>(i) + 0.5) / 500.0;
        ((i % 2) == 0 ? a : b).push_back(u);
    }
    const KsTestResult r = ks_two_sample(a, b);
    EXPECT_LT(r.statistic, 0.01);
    EXPECT_GT(r.p_value, 0.99);
}

TEST(KsTest, NearIdenticalLargeSamplesReportNoDifference) {
    // λ ≈ 0.005 with huge samples: the Kolmogorov series does not converge
    // within its term budget; the NR probks convention applies (p = 1)
    // instead of returning a truncated, deflated sum.
    EXPECT_GT(ks_p_value(1e-5, 200000, 200000), 0.999);
    // And a large-sample near-tie through the full two-sample path.
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 50000; ++i) {
        const double u = (static_cast<double>(i) + 0.5) / 50000.0;
        a.push_back(u);
        b.push_back(u + 1e-7);
    }
    EXPECT_GT(ks_two_sample(a, b).p_value, 0.999);
}

TEST(KsTest, PValueIsMonotoneInTheStatistic) {
    EXPECT_GT(ks_p_value(0.05, 200, 200), ks_p_value(0.10, 200, 200));
    EXPECT_GT(ks_p_value(0.10, 200, 200), ks_p_value(0.20, 200, 200));
    EXPECT_DOUBLE_EQ(ks_p_value(0.0, 200, 200), 1.0);
    const std::vector<double> empty;
    const std::vector<double> one = {1.0};
    EXPECT_THROW((void)ks_statistic(empty, one), InvalidArgument);
}

TEST(CommonHelpers, CeilAndFloorLog2) {
    EXPECT_EQ(ceil_log2(1), 0U);
    EXPECT_EQ(ceil_log2(2), 1U);
    EXPECT_EQ(ceil_log2(3), 2U);
    EXPECT_EQ(ceil_log2(1024), 10U);
    EXPECT_EQ(ceil_log2(1025), 11U);
    EXPECT_EQ(floor_log2(1), 0U);
    EXPECT_EQ(floor_log2(1023), 9U);
    EXPECT_EQ(floor_log2(1024), 10U);
}

TEST(CommonHelpers, ParallelTimeConversion) {
    EXPECT_DOUBLE_EQ(to_parallel_time(1000, 100), 10.0);
    EXPECT_DOUBLE_EQ(to_parallel_time(0, 100), 0.0);
    EXPECT_DOUBLE_EQ(to_parallel_time(5, 0), 0.0);
}

}  // namespace
}  // namespace ppsim
