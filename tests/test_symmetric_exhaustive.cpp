// Exhaustive verification of the Section-4 symmetry law over the states a
// real execution actually visits: collect every distinct reachable state
// from seeded runs, then check p = q ⇒ p' = q' for ALL equal pairs and
// swap-consistency for all ordered pairs of the collected set. This is far
// stronger than the hand-picked probes in test_pll_symmetric.cpp.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "core/log.hpp"
#include "protocols/pll_symmetric.hpp"

namespace ppsim {
namespace {

/// Collects distinct states observed across seeded executions.
std::vector<SymPllState> collect_reachable_states(std::size_t n, std::size_t runs,
                                                  StepCount steps_per_run) {
    const SymmetricPll proto = SymmetricPll::for_population(n);
    std::unordered_map<std::uint64_t, SymPllState> seen;
    for (std::size_t run = 0; run < runs; ++run) {
        Engine<SymmetricPll> engine(proto, n, 1000 + run);
        seen.emplace(proto.state_key(engine.population()[0]),
                     engine.population()[0]);
        for (StepCount step = 0; step < steps_per_run; ++step) {
            const Interaction ia = engine.step();
            for (const AgentId id : {ia.initiator, ia.responder}) {
                const SymPllState& s = engine.population()[id];
                seen.emplace(proto.state_key(s), s);
            }
        }
    }
    std::vector<SymPllState> states;
    states.reserve(seen.size());
    for (const auto& [key, state] : seen) states.push_back(state);
    return states;
}

TEST(SymmetricExhaustive, LawHoldsOnAllReachableStatePairs) {
    const std::size_t n = 64;
    const SymmetricPll proto = SymmetricPll::for_population(n);
    const std::vector<SymPllState> states =
        collect_reachable_states(n, 3, 400'000);
    ASSERT_GT(states.size(), 50U) << "collection too small to be meaningful";
    log_debug("symmetric exhaustive sweep over " + std::to_string(states.size()) +
              " reachable states");

    // Equal pairs: p = q ⇒ p' = q'.
    for (const SymPllState& probe : states) {
        SymPllState a = probe;
        SymPllState b = probe;
        proto.interact(a, b);
        ASSERT_EQ(a, b) << "symmetry broken from an equal reachable pair";
    }

    // All ordered pairs: interact(p, q) must equal interact(q, p) with the
    // results swapped — the transition cannot read the agent order.
    for (const SymPllState& p : states) {
        for (const SymPllState& q : states) {
            SymPllState a0 = p;
            SymPllState a1 = q;
            proto.interact(a0, a1);
            SymPllState b0 = q;
            SymPllState b1 = p;
            proto.interact(b0, b1);
            ASSERT_EQ(a0, b1) << "role asymmetry detected";
            ASSERT_EQ(a1, b0) << "role asymmetry detected";
        }
    }
}

TEST(SymmetricExhaustive, AsymmetricPllIsActuallyAsymmetric) {
    // Sanity check of the test method itself: the asymmetric protocol must
    // FAIL the swap test on some reachable pair (the coin flips read roles),
    // otherwise the sweep above proves nothing.
    const std::size_t n = 64;
    const Pll proto = Pll::for_population(n);
    Engine<Pll> engine(proto, n, 7);
    engine.run_for(100'000);

    bool found_asymmetry = false;
    const auto states = engine.population().states();
    for (std::size_t i = 0; i < states.size() && !found_asymmetry; ++i) {
        for (std::size_t j = 0; j < states.size() && !found_asymmetry; ++j) {
            PllState a0 = states[i];
            PllState a1 = states[j];
            proto.interact(a0, a1);
            PllState b0 = states[j];
            PllState b1 = states[i];
            proto.interact(b0, b1);
            if (!(a0 == b1) || !(a1 == b0)) found_asymmetry = true;
        }
    }
    EXPECT_TRUE(found_asymmetry)
        << "no asymmetric pair found — the sweep would be vacuous";
}

TEST(Logging, LevelsFilterAndRender) {
    const LogLevel original = log_level();
    set_log_level(LogLevel::warn);
    EXPECT_EQ(log_level(), LogLevel::warn);
    // Filtered and passing messages must both be safe to emit.
    log_debug("should be dropped");
    log_warn("should appear on stderr");
    EXPECT_EQ(to_string(LogLevel::debug), "DEBUG");
    EXPECT_EQ(to_string(LogLevel::error), "ERROR");
    set_log_level(original);
}

}  // namespace
}  // namespace ppsim
