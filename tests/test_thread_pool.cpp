// Contract tests for the sweep parallelism layer (src/core/thread_pool.hpp):
// wait_idle really waits for every submitted task (including tasks submitted
// while others run), parallel_for covers every index exactly once for any
// thread/count shape, and destruction drains the queue rather than dropping
// work. run_sweep and run_repeated build directly on these guarantees.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"

namespace ppsim {
namespace {

TEST(ThreadPool, ReportsItsThreadCount) {
    ThreadPool pool(3);
    EXPECT_EQ(pool.thread_count(), 3U);
    ThreadPool defaulted(0);  // 0 = hardware concurrency, at least one
    EXPECT_GE(defaulted.thread_count(), 1U);
}

TEST(ThreadPool, WaitIdleSeesEverySubmittedTask) {
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int round = 0; round < 5; ++round) {
        const int batch = 40;
        for (int i = 0; i < batch; ++i) {
            pool.submit([&done] {
                std::this_thread::sleep_for(std::chrono::microseconds(100));
                done.fetch_add(1, std::memory_order_relaxed);
            });
        }
        pool.wait_idle();
        // At the wait_idle barrier every task of every round so far is done.
        EXPECT_EQ(done.load(), (round + 1) * batch);
    }
}

TEST(ThreadPool, WaitIdleAfterMixedFastAndSlowSubmits) {
    ThreadPool pool(2);
    std::atomic<int> slow_done{0};
    std::atomic<int> fast_done{0};
    for (int i = 0; i < 4; ++i) {
        pool.submit([&slow_done] {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            slow_done.fetch_add(1, std::memory_order_relaxed);
        });
    }
    for (int i = 0; i < 200; ++i) {
        pool.submit([&fast_done] { fast_done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(slow_done.load(), 4);
    EXPECT_EQ(fast_done.load(), 200);
    // An idle pool must not block a second wait.
    pool.wait_idle();
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturnsImmediately) {
    ThreadPool pool(2);
    pool.wait_idle();  // nothing submitted: must not deadlock
    SUCCEED();
}

TEST(ThreadPool, DestructionDrainsTheQueue) {
    std::atomic<int> done{0};
    {
        // One worker and many slow tasks: most are still queued when the
        // destructor runs. The contract is drain-then-join, not drop.
        ThreadPool pool(1);
        for (int i = 0; i < 32; ++i) {
            pool.submit([&done] {
                std::this_thread::sleep_for(std::chrono::microseconds(500));
                done.fetch_add(1, std::memory_order_relaxed);
            });
        }
    }
    EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolParallelFor, CoversEveryIndexExactlyOnce) {
    for (const std::size_t threads : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                                      std::size_t{16}}) {
        const std::size_t count = 257;  // not a multiple of any thread count
        std::vector<std::atomic<int>> hits(count);
        ThreadPool::parallel_for(count, threads, [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < count; ++i) {
            ASSERT_EQ(hits[i].load(), 1) << "index " << i << ", threads " << threads;
        }
    }
}

TEST(ThreadPoolParallelFor, HandlesDegenerateShapes) {
    std::atomic<int> calls{0};
    ThreadPool::parallel_for(0, 8, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);  // zero tasks: no calls, no hang
    ThreadPool::parallel_for(1, 8, [&](std::size_t i) {
        EXPECT_EQ(i, 0U);
        calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 1);  // more threads than tasks
    ThreadPool::parallel_for(5, 1, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 6);  // single-threaded inline path
}

TEST(ThreadPoolParallelFor, RunsConcurrentlyWhenAskedTo) {
    // With 4 threads and 4 tasks that each block until all 4 have started,
    // completion proves the tasks really ran concurrently (an accidentally
    // serial implementation would deadlock; the watchdog converts that into
    // a failure rather than a hung suite).
    std::atomic<bool> finished{false};
    std::thread watchdog([&finished] {
        for (int i = 0; i < 400 && !finished.load(); ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        EXPECT_TRUE(finished.load()) << "parallel_for serialised concurrent tasks";
        if (!finished.load()) std::abort();  // fail loudly instead of hanging forever
    });
    std::atomic<int> started{0};
    ThreadPool::parallel_for(4, 4, [&](std::size_t) {
        started.fetch_add(1, std::memory_order_relaxed);
        while (started.load(std::memory_order_relaxed) < 4) {
            std::this_thread::yield();
        }
    });
    finished.store(true);
    watchdog.join();
}

}  // namespace
}  // namespace ppsim
