// Contract tests for the sweep parallelism layer (src/core/thread_pool.hpp):
// wait_idle really waits for every submitted task (including tasks submitted
// while others run), for_each / parallel_for cover every index exactly once
// for any thread/count shape, submit's terminate-on-throw contract holds, and
// destruction drains the queue rather than dropping work. run_sweep,
// run_repeated and the engines' intra-run sharding (shard.hpp) build directly
// on these guarantees.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"

namespace ppsim {
namespace {

TEST(ThreadPool, ReportsItsThreadCount) {
    ThreadPool pool(3);
    EXPECT_EQ(pool.thread_count(), 3U);
    ThreadPool defaulted(0);  // 0 = hardware concurrency, at least one
    EXPECT_GE(defaulted.thread_count(), 1U);
}

TEST(ThreadPool, WaitIdleSeesEverySubmittedTask) {
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int round = 0; round < 5; ++round) {
        const int batch = 40;
        for (int i = 0; i < batch; ++i) {
            pool.submit([&done] {
                std::this_thread::sleep_for(std::chrono::microseconds(100));
                done.fetch_add(1, std::memory_order_relaxed);
            });
        }
        pool.wait_idle();
        // At the wait_idle barrier every task of every round so far is done.
        EXPECT_EQ(done.load(), (round + 1) * batch);
    }
}

TEST(ThreadPool, WaitIdleAfterMixedFastAndSlowSubmits) {
    ThreadPool pool(2);
    std::atomic<int> slow_done{0};
    std::atomic<int> fast_done{0};
    for (int i = 0; i < 4; ++i) {
        pool.submit([&slow_done] {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            slow_done.fetch_add(1, std::memory_order_relaxed);
        });
    }
    for (int i = 0; i < 200; ++i) {
        pool.submit([&fast_done] { fast_done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(slow_done.load(), 4);
    EXPECT_EQ(fast_done.load(), 200);
    // An idle pool must not block a second wait.
    pool.wait_idle();
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturnsImmediately) {
    ThreadPool pool(2);
    pool.wait_idle();  // nothing submitted: must not deadlock
    SUCCEED();
}

TEST(ThreadPool, DestructionDrainsTheQueue) {
    std::atomic<int> done{0};
    {
        // One worker and many slow tasks: most are still queued when the
        // destructor runs. The contract is drain-then-join, not drop.
        ThreadPool pool(1);
        for (int i = 0; i < 32; ++i) {
            pool.submit([&done] {
                std::this_thread::sleep_for(std::chrono::microseconds(500));
                done.fetch_add(1, std::memory_order_relaxed);
            });
        }
    }
    EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, WaitIdleCoversTasksSubmittedFromWithinATask) {
    // A task that submits follow-up work mid-flight: wait_idle must count the
    // children too, because the sweep layer funnels nested work through one
    // shared pool. Two generations deep pins the recursion, not one level.
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&pool, &done] {
            pool.submit([&pool, &done] {
                pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
                done.fetch_add(1, std::memory_order_relaxed);
            });
            done.fetch_add(1, std::memory_order_relaxed);
        });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), 24);
}

TEST(ThreadPoolDeathTest, ExceptionEscapingATaskTerminates) {
    // submit's documented contract: tasks must not throw; one that does is
    // reported to stderr and terminates the process. Death tests fork, so the
    // terminate happens in the child — threadsafe style re-executes the test
    // binary, which is the only safe mode with live worker threads around.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ThreadPool pool(1);
            pool.submit([] { throw std::runtime_error("boom"); });
            pool.wait_idle();
        },
        "exception escaped a ThreadPool task: boom");
}

TEST(ThreadPoolForEach, CoversEveryIndexExactlyOnce) {
    ThreadPool pool(3);
    for (const std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                                    std::size_t{257}}) {
        std::vector<std::atomic<int>> hits(count);
        pool.for_each(count,
                      [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
        for (std::size_t i = 0; i < count; ++i) {
            ASSERT_EQ(hits[i].load(), 1) << "index " << i << ", count " << count;
        }
    }
}

TEST(ThreadPoolForEach, MaxConcurrencyOneRunsInlineOnTheCaller) {
    ThreadPool pool(4);
    const std::thread::id caller = std::this_thread::get_id();
    std::atomic<int> off_thread{0};
    pool.for_each(
        64,
        [&](std::size_t) {
            if (std::this_thread::get_id() != caller) off_thread.fetch_add(1);
        },
        /*max_concurrency=*/1);
    EXPECT_EQ(off_thread.load(), 0);
}

TEST(ThreadPoolForEach, NestedCallsFromInsideTasksComplete) {
    // The engines' sharded rounds run inside sweep repetitions that already
    // occupy pool workers: for_each from within a pool task must complete
    // even when every worker is busy, because the caller participates as a
    // runner. A tiny pool maximises the chance all workers are occupied.
    ThreadPool pool(2);
    std::atomic<int> inner_total{0};
    pool.for_each(8, [&](std::size_t) {
        pool.for_each(16, [&](std::size_t) {
            inner_total.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPoolForEach, PropagatesExceptionsFromTheCallingThread) {
    // With max_concurrency=1 every index runs inline, so a throwing fn
    // surfaces on the caller instead of tripping the worker terminate path.
    ThreadPool pool(2);
    EXPECT_THROW(
        pool.for_each(4, [](std::size_t) { throw std::runtime_error("inline"); },
                      /*max_concurrency=*/1),
        std::runtime_error);
}

TEST(ThreadPoolSharedPool, IsAStableProcessWideSingleton) {
    ThreadPool& a = shared_pool();
    ThreadPool& b = shared_pool();
    EXPECT_EQ(&a, &b);
    EXPECT_GE(a.thread_count(), 1U);
    // Sized so caller-as-runner tops out at the hardware thread count.
    const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    EXPECT_LE(a.thread_count() + 1, hw + 1);
}

TEST(ThreadPoolParallelFor, CoversEveryIndexExactlyOnce) {
    for (const std::size_t threads : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                                      std::size_t{16}}) {
        const std::size_t count = 257;  // not a multiple of any thread count
        std::vector<std::atomic<int>> hits(count);
        ThreadPool::parallel_for(count, threads, [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < count; ++i) {
            ASSERT_EQ(hits[i].load(), 1) << "index " << i << ", threads " << threads;
        }
    }
}

TEST(ThreadPoolParallelFor, HandlesDegenerateShapes) {
    std::atomic<int> calls{0};
    ThreadPool::parallel_for(0, 8, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);  // zero tasks: no calls, no hang
    ThreadPool::parallel_for(1, 8, [&](std::size_t i) {
        EXPECT_EQ(i, 0U);
        calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 1);  // more threads than tasks
    ThreadPool::parallel_for(5, 1, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 6);  // single-threaded inline path
}

TEST(ThreadPoolParallelFor, RunsConcurrentlyWhenAskedTo) {
    // With 4 threads and 4 tasks that each block until all 4 have started,
    // completion proves the tasks really ran concurrently (an accidentally
    // serial implementation would deadlock; the watchdog converts that into
    // a failure rather than a hung suite).
    std::atomic<bool> finished{false};
    std::thread watchdog([&finished] {
        for (int i = 0; i < 400 && !finished.load(); ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        EXPECT_TRUE(finished.load()) << "parallel_for serialised concurrent tasks";
        if (!finished.load()) std::abort();  // fail loudly instead of hanging forever
    });
    std::atomic<int> started{0};
    ThreadPool::parallel_for(4, 4, [&](std::size_t) {
        started.fetch_add(1, std::memory_order_relaxed);
        while (started.load(std::memory_order_relaxed) < 4) {
            std::this_thread::yield();
        }
    });
    finished.store(true);
    watchdog.join();
}

}  // namespace
}  // namespace ppsim
