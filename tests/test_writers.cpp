// Unit tests for the output writers: JSON builder, CSV writer, ASCII tables.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/common.hpp"
#include "core/csv.hpp"
#include "core/json.hpp"
#include "core/table.hpp"

namespace ppsim {
namespace {

std::string temp_path(const std::string& name) {
    return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Json, ScalarsSerialise) {
    EXPECT_EQ(JsonValue(nullptr).dump(), "null");
    EXPECT_EQ(JsonValue(true).dump(), "true");
    EXPECT_EQ(JsonValue(false).dump(), "false");
    EXPECT_EQ(JsonValue(42).dump(), "42");
    EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
    EXPECT_EQ(JsonValue(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
    EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, EscapesStrings) {
    const std::string dumped = JsonValue("a\"b\\c\nd\te").dump();
    EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\nd\\te\"");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
    JsonValue obj = JsonValue::object();
    obj.set("zeta", 1).set("alpha", 2);
    const std::string dumped = obj.dump();
    EXPECT_LT(dumped.find("zeta"), dumped.find("alpha"));
}

TEST(Json, NestedStructuresRoundTripTextually) {
    JsonValue root = JsonValue::object();
    root["config"]["n"] = 128;
    root["points"].push_back(JsonValue(1.5));
    root["points"].push_back(JsonValue(2.5));
    const std::string dumped = root.dump();
    EXPECT_NE(dumped.find("\"config\""), std::string::npos);
    EXPECT_NE(dumped.find("\"n\": 128"), std::string::npos);
    EXPECT_NE(dumped.find("1.5"), std::string::npos);
}

TEST(Json, TypeMisuseThrows) {
    JsonValue arr = JsonValue::array();
    EXPECT_THROW(arr["key"] = 1, InvalidArgument);
    JsonValue obj = JsonValue::object();
    EXPECT_THROW(obj.push_back(JsonValue(1)), InvalidArgument);
}

TEST(Json, WritesFileAtomically) {
    const std::string path = temp_path("ppsim_json_test.json");
    JsonValue root = JsonValue::object();
    root.set("ok", true);
    write_json_file(path, root);
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_NE(buffer.str().find("\"ok\": true"), std::string::npos);
    std::filesystem::remove(path);
}

TEST(Csv, WritesHeaderAndRows) {
    const std::string path = temp_path("ppsim_csv_test.csv");
    {
        CsvWriter csv(path, {"n", "time"});
        csv.write_row({"128", "3.5"});
        csv.write_row({"256", "4.0"});
        EXPECT_EQ(csv.rows_written(), 2U);
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "n,time");
    std::getline(in, line);
    EXPECT_EQ(line, "128,3.5");
    std::filesystem::remove(path);
}

TEST(Csv, EscapesSpecialCharacters) {
    const std::string path = temp_path("ppsim_csv_escape.csv");
    {
        CsvWriter csv(path, {"text"});
        csv.write_row({"a,b"});
        csv.write_row({"say \"hi\""});
    }
    std::ifstream in(path);
    std::string header;
    std::string row1;
    std::string row2;
    std::getline(in, header);
    std::getline(in, row1);
    std::getline(in, row2);
    EXPECT_EQ(row1, "\"a,b\"");
    EXPECT_EQ(row2, "\"say \"\"hi\"\"\"");
    std::filesystem::remove(path);
}

TEST(Csv, RejectsWrongColumnCount) {
    const std::string path = temp_path("ppsim_csv_cols.csv");
    CsvWriter csv(path, {"a", "b"});
    EXPECT_THROW(csv.write_row({"only one"}), InvalidArgument);
    std::filesystem::remove(path);
}

TEST(TextTable, RendersAlignedColumns) {
    TextTable table;
    table.add_column("name", Align::left);
    table.add_column("value");
    table.add_row({"x", "1"});
    table.add_row({"longer", "23"});
    const std::string out = table.render("My table");
    EXPECT_NE(out.find("My table"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Right-aligned numeric column: "1" should be padded on the left.
    EXPECT_NE(out.find(" 1 "), std::string::npos);
}

TEST(TextTable, EnforcesSchema) {
    TextTable table;
    table.add_column("a");
    EXPECT_THROW(table.add_row({"1", "2"}), InvalidArgument);
    table.add_row({"1"});
    EXPECT_THROW(table.add_column("late"), InvalidArgument);
}

TEST(TextTable, SeparatorsRender) {
    TextTable table;
    table.add_column("v");
    table.add_row({"1"});
    table.add_separator();
    table.add_row({"2"});
    const std::string out = table.render();
    // Two rule lines: one under the header, one explicit separator.
    std::size_t rules = 0;
    std::istringstream stream(out);
    std::string line;
    while (std::getline(stream, line)) {
        if (!line.empty() && line.find_first_not_of("-+") == std::string::npos) ++rules;
    }
    EXPECT_EQ(rules, 2U);
}

TEST(Formatting, Doubles) {
    EXPECT_EQ(format_double(3.14159, 2), "3.14");
    EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "n/a");
    EXPECT_EQ(format_probability(0.0), "0");
    EXPECT_EQ(format_probability(0.25), "0.2500");
    EXPECT_EQ(format_probability(1e-9), "1.00e-09");
    EXPECT_EQ(format_with_ci(2.0, 0.5, 1), "2.0 ± 0.5");
}

}  // namespace
}  // namespace ppsim
