// bench_to_json — measures interactions/sec of the simulation back-ends
// (agent-based Engine, count-based BatchedEngine, reaction-rate
// GillespieEngine, adaptive HybridEngine) across protocols, population sizes
// and batch-pairing modes, prints a table, and writes the machine-readable
// perf trajectory to BENCH_engine.json so future PRs can regress against it.
// The batched engine is measured once per pairing strategy (pairwise | bulk |
// auto — see src/core/batch_pairing.hpp), so the JSON carries a `batch_mode`
// dimension alongside protocol and n; the gillespie and hybrid engines
// contribute one row per (protocol, n, threads) like the batched engine.
// `--threads` sweeps the count engines' intra-run worker count
// (src/core/shard.hpp); the agent engine has no sharded path, so it is
// measured once per (protocol, n) and its rows always carry threads = 1.
// `--protocols` and `--engines` filter the grid, so a single engine (or a
// single protocol × engine cell) can be re-measured without redoing the whole
// sweep. The hybrid engine's calibration probes are warmed outside the timed
// region (and cached across runs — see src/core/calibration.hpp), so its rows
// measure steady-state throughput, not probe cost.
//
//   bench_to_json                         # default grid, writes BENCH_engine.json
//   bench_to_json --protocols pll --sizes 1048576 --threads 1,2,4 --json out.json
//   bench_to_json --engines hybrid --protocols pll,loose_sud12   # one engine only
#include <algorithm>
#include <array>
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/args.hpp"
#include "core/batch_pairing.hpp"
#include "core/engine.hpp"
#include "core/json.hpp"
#include "core/table.hpp"
#include "protocols/registry.hpp"

namespace {

using namespace ppsim;

std::vector<std::string> split_csv(const std::string& csv) {
    std::vector<std::string> out;
    std::istringstream stream(csv);
    std::string item;
    while (std::getline(stream, item, ',')) {
        if (!item.empty()) out.push_back(item);
    }
    return out;
}

/// One measurement: repeatedly runs fresh elections capped at `steps_per_run`
/// interactions until `min_seconds` of wall time accumulate, and reports the
/// aggregate interaction throughput.
struct Measurement {
    StepCount steps = 0;
    double seconds = 0.0;

    [[nodiscard]] double rate() const noexcept {
        return seconds > 0.0 ? static_cast<double>(steps) / seconds : 0.0;
    }
};

Measurement measure(const std::string& protocol, EngineKind engine, BatchMode batch_mode,
                    std::size_t n, StepCount steps_per_run, double min_seconds,
                    std::size_t threads = 1) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    if (engine == EngineKind::hybrid) {
        // Warm the calibration memo outside the timed region: the first
        // hybrid construction per (protocol, threads, probe bucket) may run
        // probe elections, which are setup cost, not throughput.
        (void)registry.make_simulation(protocol, n, 0xBEEF, engine, batch_mode,
                                       threads);
    }
    Measurement m;
    std::uint64_t seed = 0xBEEF;
    while (m.seconds < min_seconds) {
        const auto start = std::chrono::steady_clock::now();
        // run_for, not run_election: fixed work regardless of convergence,
        // so fast-converging protocols don't degenerate into measuring
        // engine construction. Built through the type-erased Simulation
        // layer — the virtual dispatch is per run, not per interaction, so
        // this measures the same hot loops as the templated benches.
        const auto sim =
            registry.make_simulation(protocol, n, seed++, engine, batch_mode, threads);
        const RunResult run = sim->run_for(steps_per_run);
        const auto stop = std::chrono::steady_clock::now();
        m.steps += run.steps;
        m.seconds += std::chrono::duration<double>(stop - start).count();
    }
    return m;
}

std::string scientific(double value) {
    std::ostringstream out;
    out.precision(3);
    out << std::scientific << value;
    return out.str();
}

std::string ratio(double value) {
    std::ostringstream out;
    out.precision(1);
    out << std::fixed << value << "x";
    return out.str();
}

int run(const ArgParser& args) {
    const std::vector<std::string> protocols = split_csv(args.get_string(
        "protocols", "angluin06,loose_sud12,lottery,pll,rated_epidemic,rated_election"));
    std::vector<std::size_t> sizes;
    for (const std::string& s :
         split_csv(args.get_string("sizes", "1024,16384,1048576,16777216"))) {
        sizes.push_back(static_cast<std::size_t>(std::stoull(s)));
    }
    // --engines filters which back-ends are measured; names are validated
    // against the engine table, so a typo gets the full valid-name listing.
    std::array<bool, engine_table.size()> want{};
    for (const std::string& name : split_csv(args.get_string(
             "engines", "agent,batched,gillespie,hybrid"))) {
        want[static_cast<std::size_t>(parse_engine_kind(name))] = true;
    }
    const bool want_agent = want[static_cast<std::size_t>(EngineKind::agent)];
    const bool want_batched = want[static_cast<std::size_t>(EngineKind::batched)];
    const bool want_gillespie = want[static_cast<std::size_t>(EngineKind::gillespie)];
    const bool want_hybrid = want[static_cast<std::size_t>(EngineKind::hybrid)];
    const double min_seconds = args.get_double("min-seconds", 0.3);
    const double parallel_time_cap = args.get_double("parallel-time", 16.0);
    std::vector<std::size_t> thread_counts;
    for (const std::string& t : split_csv(args.get_string("threads", "1"))) {
        std::size_t threads = static_cast<std::size_t>(std::stoull(t));
        if (threads == 0) threads = std::max<unsigned>(1, std::thread::hardware_concurrency());
        thread_counts.push_back(threads);
    }
    if (thread_counts.empty()) thread_counts.push_back(1);

    TextTable table;
    table.add_column("protocol", Align::left);
    table.add_column("n");
    table.add_column("threads");
    if (want_agent) table.add_column("agent int/s");
    if (want_batched) {
        for (const BatchModeDescriptor& d : batch_mode_table) {
            table.add_column(std::string(d.name) + " int/s");
        }
    }
    if (want_gillespie) table.add_column("gillespie int/s");
    if (want_hybrid) table.add_column("hybrid int/s");
    if (want_agent && want_batched) table.add_column("auto speedup");
    if (want_batched) table.add_column("bulk/pairwise");
    if (want_gillespie && want_batched) table.add_column("gillespie/pairwise");
    if (want_hybrid) table.add_column("hybrid/best");

    JsonValue root = JsonValue::object();
    root.set("library_version", library_version);
    root.set("tool", "bench_to_json");
    JsonValue rows = JsonValue::array();

    for (const std::string& protocol : protocols) {
        for (const std::size_t n : sizes) {
            const auto steps_per_run = static_cast<StepCount>(
                parallel_time_cap * static_cast<double>(n));
            // The agent engine has no sharded path: measure once per
            // (protocol, n) and reuse the rate as the baseline of every
            // threads row.
            Measurement agent;
            if (want_agent) {
                agent = measure(protocol, EngineKind::agent, BatchMode::automatic, n,
                                steps_per_run, min_seconds);

                JsonValue agent_row = JsonValue::object();
                agent_row.set("protocol", protocol);
                agent_row.set("n", static_cast<std::uint64_t>(n));
                agent_row.set("threads", std::uint64_t{1});
                agent_row.set("steps_per_run", steps_per_run);
                agent_row.set("engine", std::string(to_string(EngineKind::agent)));
                agent_row.set("interactions_per_sec", agent.rate());
                rows.push_back(std::move(agent_row));
            }

            for (const std::size_t threads : thread_counts) {
                std::vector<std::string> cells = {protocol, std::to_string(n),
                                                  std::to_string(threads)};
                if (want_agent) cells.push_back(scientific(agent.rate()));
                double auto_rate = 0.0;
                double pairwise_rate = 0.0;
                double bulk_rate = 0.0;
                // Best fixed-engine rate among the engines actually measured
                // in this cell — the hybrid row's comparison baseline.
                double best_fixed_rate = agent.rate();
                if (want_batched) {
                    for (const BatchModeDescriptor& d : batch_mode_table) {
                        const Measurement batched =
                            measure(protocol, EngineKind::batched, d.mode, n,
                                    steps_per_run, min_seconds, threads);
                        const double speedup =
                            agent.rate() > 0.0 ? batched.rate() / agent.rate() : 0.0;
                        if (d.mode == BatchMode::automatic) auto_rate = batched.rate();
                        if (d.mode == BatchMode::pairwise) pairwise_rate = batched.rate();
                        if (d.mode == BatchMode::bulk) bulk_rate = batched.rate();
                        best_fixed_rate = std::max(best_fixed_rate, batched.rate());
                        cells.push_back(scientific(batched.rate()));

                        JsonValue row = JsonValue::object();
                        row.set("protocol", protocol);
                        row.set("n", static_cast<std::uint64_t>(n));
                        row.set("threads", static_cast<std::uint64_t>(threads));
                        row.set("steps_per_run", steps_per_run);
                        row.set("engine", std::string(to_string(EngineKind::batched)));
                        row.set("batch_mode", std::string(d.name));
                        row.set("interactions_per_sec", batched.rate());
                        row.set("speedup_vs_agent", speedup);
                        rows.push_back(std::move(row));
                    }
                }
                Measurement gillespie;
                if (want_gillespie) {
                    gillespie = measure(protocol, EngineKind::gillespie,
                                        BatchMode::automatic, n, steps_per_run,
                                        min_seconds, threads);
                    best_fixed_rate = std::max(best_fixed_rate, gillespie.rate());
                    cells.push_back(scientific(gillespie.rate()));

                    JsonValue gillespie_row = JsonValue::object();
                    gillespie_row.set("protocol", protocol);
                    gillespie_row.set("n", static_cast<std::uint64_t>(n));
                    gillespie_row.set("threads", static_cast<std::uint64_t>(threads));
                    gillespie_row.set("steps_per_run", steps_per_run);
                    gillespie_row.set("engine",
                                      std::string(to_string(EngineKind::gillespie)));
                    gillespie_row.set("interactions_per_sec", gillespie.rate());
                    gillespie_row.set("speedup_vs_agent",
                                      agent.rate() > 0.0
                                          ? gillespie.rate() / agent.rate()
                                          : 0.0);
                    gillespie_row.set("speedup_vs_batched_pairwise",
                                      pairwise_rate > 0.0
                                          ? gillespie.rate() / pairwise_rate
                                          : 0.0);
                    rows.push_back(std::move(gillespie_row));
                }
                Measurement hybrid;
                if (want_hybrid) {
                    hybrid = measure(protocol, EngineKind::hybrid, BatchMode::automatic,
                                     n, steps_per_run, min_seconds, threads);
                    cells.push_back(scientific(hybrid.rate()));

                    JsonValue hybrid_row = JsonValue::object();
                    hybrid_row.set("protocol", protocol);
                    hybrid_row.set("n", static_cast<std::uint64_t>(n));
                    hybrid_row.set("threads", static_cast<std::uint64_t>(threads));
                    hybrid_row.set("steps_per_run", steps_per_run);
                    hybrid_row.set("engine", std::string(to_string(EngineKind::hybrid)));
                    hybrid_row.set("interactions_per_sec", hybrid.rate());
                    hybrid_row.set("speedup_vs_agent",
                                   agent.rate() > 0.0 ? hybrid.rate() / agent.rate()
                                                      : 0.0);
                    hybrid_row.set("speedup_vs_best_fixed",
                                   best_fixed_rate > 0.0
                                       ? hybrid.rate() / best_fixed_rate
                                       : 0.0);
                    rows.push_back(std::move(hybrid_row));
                }

                if (want_agent && want_batched) {
                    cells.push_back(
                        ratio(agent.rate() > 0.0 ? auto_rate / agent.rate() : 0.0));
                }
                if (want_batched) {
                    cells.push_back(
                        ratio(pairwise_rate > 0.0 ? bulk_rate / pairwise_rate : 0.0));
                }
                if (want_gillespie && want_batched) {
                    cells.push_back(ratio(
                        pairwise_rate > 0.0 ? gillespie.rate() / pairwise_rate : 0.0));
                }
                if (want_hybrid) {
                    cells.push_back(ratio(best_fixed_rate > 0.0
                                              ? hybrid.rate() / best_fixed_rate
                                              : 0.0));
                }
                table.add_row(cells);
            }
        }
    }
    root.set("measurements", std::move(rows));

    std::cout << table.render("engine throughput (interactions/sec)");
    if (const std::string path = args.get_string("json", "BENCH_engine.json");
        !path.empty()) {
        write_json_file(path, root);
        std::cout << "wrote " << path << "\n";
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    ArgParser args;
    args.declare("protocols", "comma-separated registry names",
                 "angluin06,loose_sud12,lottery,pll,rated_epidemic,rated_election");
    args.declare("engines", "comma-separated engine names: " + engine_kind_list(),
                 "agent,batched,gillespie,hybrid");
    args.declare("sizes", "comma-separated population sizes",
                 "1024,16384,1048576,16777216");
    args.declare("threads",
                 "comma-separated intra-run worker counts for the count engines "
                 "(0 = all hardware threads)",
                 "1");
    args.declare("min-seconds", "minimum wall time per measurement", "0.3");
    args.declare("parallel-time", "interactions per run, as a multiple of n", "16");
    args.declare("json", "output JSON path (empty = skip)", "BENCH_engine.json");
    args.declare("help", "show this help");
    try {
        args.parse(argc, argv);
        if (args.get_bool("help", false)) {
            std::cout << args.usage("bench_to_json");
            return 0;
        }
        return run(args);
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
}
