#!/usr/bin/env python3
"""Markdown link checker for the repo's docs (CI: the `link-check` job).

Scans the given markdown files (or the repo's default doc set) for inline
links and validates every *repo-local* target:

  * relative file links must point at an existing file or directory
    (anchors are stripped; `path#section` checks `path`);
  * bare-anchor links (`#section`) must match a heading in the same file
    (GitHub slug rules, simplified);
  * absolute URLs (http/https/mailto) are reported but not fetched — CI
    stays hermetic.

Exit status: 0 when every local target resolves, 1 otherwise (each broken
link is printed as `file:line: broken link -> target`).

Usage:
    python3 tools/check_markdown_links.py [FILE.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_FILES = ["README.md", "ROADMAP.md", "docs/ARCHITECTURE.md", "docs/NOTATION.md"]

# Inline markdown links [text](target). Deliberately simple: no reference
# links or images with titles in these docs; fenced code blocks are skipped.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug, simplified: lowercase, drop punctuation,
    hyphenate spaces. Good enough for ASCII headings like ours."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def headings_of(path: Path) -> set[str]:
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            slugs.add(github_slug(match.group(1)))
    return slugs


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    in_fence = False
    own_headings: set[str] | None = None
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                if own_headings is None:
                    own_headings = headings_of(path)
                if target[1:] not in own_headings:
                    errors.append(f"{path}:{lineno}: broken anchor -> {target}")
                continue
            rel = target.split("#", 1)[0]
            resolved = (path.parent / rel).resolve()
            if not resolved.exists():
                errors.append(f"{path}:{lineno}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    files = [Path(a) for a in argv[1:]] or [REPO_ROOT / f for f in DEFAULT_FILES]
    errors: list[str] = []
    checked = 0
    for path in files:
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        checked += 1
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {checked} file(s): " + ("OK" if not errors else f"{len(errors)} broken"))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
