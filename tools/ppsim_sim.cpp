// ppsim_sim — the command-line face of the library: run seeded elections of
// any registered protocol, sweep sizes, verify stability, count states,
// model-check tiny populations, and emit JSON artefacts.
//
//   ppsim_sim --protocol pll --n 4096 --seed 7 --reps 50 --json out.json
//   ppsim_sim --protocol pll --n 65536 --engine batched --trajectory traj.csv
//   ppsim_sim --protocol lottery --inject "t=5:crash=0.3" --inject "t=8:reset=0.1"
//   ppsim_sim --scenario churn_election --engine gillespie --n 8192
//   ppsim_sim --protocol angluin06 --model-check --n 4
//   ppsim_sim --list
#include <algorithm>
#include <iostream>

#include "analysis/experiment.hpp"
#include "analysis/model_checker.hpp"
#include "analysis/report.hpp"
#include "analysis/scenario.hpp"
#include "analysis/statespace.hpp"
#include "core/args.hpp"
#include "core/calibration.hpp"
#include "core/fault.hpp"
#include "core/json.hpp"
#include "core/observer.hpp"
#include "core/table.hpp"
#include "protocols/registry.hpp"

namespace {

using namespace ppsim;

ArgParser make_parser() {
    ArgParser args;
    args.declare("protocol", "registry name of the protocol to run", "pll");
    args.declare("engine", "simulation back-end: " + engine_kind_list(), "agent");
    args.declare("batch-mode",
                 "batched-engine pairing strategy: " + batch_mode_list(),
                 std::string(to_string(BatchMode::automatic)));
    args.declare("calibration-dir",
                 "directory for the hybrid engine's per-machine calibration "
                 "cache (default: $PPSIM_CALIBRATION_DIR, else "
                 "$XDG_CACHE_HOME/ppsim, else ~/.cache/ppsim)",
                 "");
    args.declare("recalibrate",
                 "ignore any cached hybrid calibration and re-probe (the fresh "
                 "table overwrites the cache)");
    args.declare("threads",
                 "intra-run worker count of the count engines (1 = sequential, "
                 "0 = all hardware threads); replay is exact per (seed, threads)",
                 "1");
    args.declare("n", "population size", "1024");
    args.declare("seed", "root PRNG seed", "2019");
    args.declare("reps", "seeded repetitions", "20");
    args.declare("budget-factor", "step budget as factor * n * log2(n)", "3000");
    args.declare("verify", "extra interactions of output-stability verification", "0");
    args.declare("json", "write results to this JSON file", "");
    args.declare("trajectory",
                 "record one seeded run's leader-count time series to this CSV file", "");
    args.declare("trajectory-every",
                 "trajectory sample cadence in interactions (default: n/4)", "0");
    args.declare("trajectory-live-states",
                 "record the distinct-state census per sample (O(n) per sample "
                 "on the agent engine)",
                 "true");
    args.declare("deadline",
                 "report the leader census at this model time (parallel-time "
                 "units) for every repetition (0 = off)",
                 "0");
    args.declare("snapshot-at",
                 "comma-separated model-time points: record one seeded run's "
                 "full state census at each point",
                 "");
    args.declare("snapshot-csv", "output CSV path for --snapshot-at",
                 "snapshots.csv");
    args.declare("checkpoint",
                 "run one seeded election and write its run state to this "
                 "PPCK checkpoint file at the end (and mid-run with "
                 "--checkpoint-every); continue it later with --resume",
                 "");
    args.declare("checkpoint-every",
                 "mid-run checkpoint cadence in interactions for --checkpoint "
                 "(0 = final state only); the cadence is part of the seeded "
                 "replay contract, exactly like --threads",
                 "0");
    args.declare("resume",
                 "resume a run from a PPCK checkpoint file and continue it to "
                 "a single leader (protocol, engine, seed and threads come "
                 "from the file; combine with --checkpoint to keep "
                 "checkpointing)",
                 "");
    args.declare("inject",
                 "inject a fault at a model-time point; repeatable; spec "
                 "t=<time>:crash|rejoin|reset|silence=<value> (fractions for "
                 "crash/reset, absolute counts for rejoin, duration for "
                 "silence)",
                 "");
    args.declare("scenario",
                 "run a registered chaos workload (see --list-scenarios); "
                 "sets the protocol unless --protocol is given",
                 "");
    args.declare("recovery-csv",
                 "write per-(repetition, fault) recovery rows to this CSV file", "");
    args.declare("list-scenarios", "list registered chaos scenarios and exit");
    args.declare("states", "also count reachable states per agent");
    args.declare("model-check", "exhaustively model-check a tiny population");
    args.declare("max-configs", "model-checker configuration budget", "200000");
    args.declare("list", "list registered protocols and exit");
    args.declare("help", "show this help");
    return args;
}

std::vector<double> parse_time_points(const std::string& csv) {
    std::vector<double> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::string item =
            csv.substr(start, comma == std::string::npos ? comma : comma - start);
        if (!item.empty()) {
            try {
                out.push_back(std::stod(item));
            } catch (const std::exception&) {
                throw InvalidArgument("--snapshot-at: not a model-time point: '" +
                                      item + "'");
            }
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    if (out.empty()) {
        throw InvalidArgument("--snapshot-at needs at least one model-time point");
    }
    return out;
}

/// Runs one seeded election with a TimedSnapshotRecorder attached and
/// writes the captured censuses as CSV (model-time points → full state
/// counts). Returns false when a snapshot is unusable (a census that does
/// not conserve the population), so the smoke tests catch it.
bool write_timed_snapshots(const std::string& protocol, std::size_t n,
                           std::uint64_t seed, EngineKind engine, BatchMode batch_mode,
                           std::size_t threads, StepCount max_steps,
                           const std::vector<double>& times, const std::string& path,
                           const FaultPlan& fault_plan) {
    const auto sim = ProtocolRegistry::instance().make_simulation(
        protocol, n, seed, engine, batch_mode, threads);
    if (!fault_plan.empty()) sim->set_fault_plan(fault_plan);
    TimedSnapshotRecorder recorder(times, n);
    sim->add_observer(recorder);
    const RunResult run = run_to_single_leader(*sim, max_steps);
    write_timed_snapshots_csv(path, recorder.snapshots());
    // finish() fills every entry; report how many were captured at their
    // model-time point vs inherited from the end of a shorter run.
    std::size_t reached = 0;
    for (const TimedSnapshot& entry : recorder.snapshots()) {
        reached += entry.reached ? 1 : 0;
    }
    std::cout << "wrote " << path << " (" << recorder.snapshots().size()
              << " snapshots, " << reached << " at their model-time points, engine "
              << to_string(engine) << ", "
              << (run.converged ? "converged" : "did not converge") << " after "
              << run.steps << " interactions)\n";
    for (const TimedSnapshot& entry : recorder.snapshots()) {
        // Population is conserved — except under crash/rejoin faults, where
        // a census must merely stay non-empty.
        if (fault_plan.empty() ? entry.snapshot.total() != n
                               : entry.snapshot.total() == 0) {
            return false;
        }
    }
    return true;
}

/// Runs one seeded election with a TrajectoryRecorder attached and writes
/// the series as CSV. Returns false when the recording is unusable (empty
/// or non-monotone), so the tool exits non-zero and the smoke tests catch it.
bool write_trajectory(const std::string& protocol, std::size_t n, std::uint64_t seed,
                      EngineKind engine, BatchMode batch_mode, std::size_t threads,
                      StepCount max_steps, StepCount stride, bool live_states,
                      const std::string& path, const FaultPlan& fault_plan) {
    const TrajectoryRun run = record_trajectory(protocol, n, seed, max_steps, stride,
                                                engine, live_states, batch_mode,
                                                fault_plan, threads);
    write_trajectory_csv(path, run.points);
    std::cout << "wrote " << path << " (" << run.points.size() << " samples, engine "
              << to_string(engine) << ", "
              << (run.result.converged ? "converged" : "did not converge") << " after "
              << run.result.steps << " interactions)\n";
    if (run.points.size() < 2) return false;
    for (std::size_t i = 1; i < run.points.size(); ++i) {
        if (run.points[i].step <= run.points[i - 1].step) return false;
    }
    return run.points.front().leader_count >= run.points.back().leader_count;
}

int run(const ArgParser& args) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();

    // Ambient hybrid-engine configuration: applied before any simulation is
    // built so --engine hybrid (and scenarios that use it) see the flags.
    {
        HybridOptions options = hybrid_options();
        options.cache_dir = args.get_string("calibration-dir", "");
        options.recalibrate = args.get_bool("recalibrate", false);
        set_hybrid_options(options);
    }

    if (args.get_bool("list", false)) {
        TextTable table;
        table.add_column("protocol", Align::left);
        table.add_column("citation", Align::left);
        table.add_column("states", Align::left);
        table.add_column("expected time", Align::left);
        for (const std::string& name : registry.names()) {
            const ProtocolInfo& info = registry.info(name);
            table.add_row({info.name, info.citation, info.theory_states, info.theory_time});
        }
        std::cout << table.render("registered protocols");
        return 0;
    }

    if (args.get_bool("list-scenarios", false)) {
        TextTable table;
        table.add_column("scenario", Align::left);
        table.add_column("protocol", Align::left);
        table.add_column("plan", Align::left);
        for (const ChaosScenario& scenario : chaos_scenarios()) {
            table.add_row({scenario.name, scenario.protocol, scenario.summary});
        }
        std::cout << table.render("registered chaos scenarios");
        return 0;
    }

    const std::string scenario_name = args.get_string("scenario", "");
    const std::vector<std::string> inject_specs = args.get_strings("inject");
    require(scenario_name.empty() || inject_specs.empty(),
            "--scenario and --inject are mutually exclusive (a scenario is a "
            "registered plan; --inject builds an ad-hoc one)");
    const ChaosScenario* scenario =
        scenario_name.empty() ? nullptr : &find_chaos_scenario(scenario_name);

    const std::string protocol = args.has("protocol") || scenario == nullptr
                                     ? args.get_string("protocol", "pll")
                                     : scenario->protocol;
    const auto n = static_cast<std::size_t>(args.get_u64("n", 1024));
    const std::uint64_t seed = args.get_u64("seed", 2019);

    FaultPlan fault_plan;
    if (scenario != nullptr) fault_plan = scenario->make_plan(n);
    for (const std::string& spec : inject_specs) {
        if (!spec.empty()) fault_plan.faults.push_back(parse_fault_spec(spec));
    }
    for (const TimedFault& fault : fault_plan.faults) {
        validate_fault_action(fault.action);
    }

    if (args.get_bool("model-check", false)) {
        require(fault_plan.empty(),
                "--model-check explores the fault-free transition relation; "
                "it cannot be combined with --inject or --scenario");
        const auto protocol_instance = registry.make(protocol, n);
        const auto budget = static_cast<std::size_t>(args.get_u64("max-configs", 200000));
        const ModelCheckReport report = model_check(*protocol_instance, n, budget);
        std::cout << "model check of " << protocol << " at n = " << n << ":\n"
                  << "  configurations: " << report.configurations
                  << (report.exhausted ? " (exhaustive)" : " (budget hit)") << "\n"
                  << "  transitions:    " << report.transitions << "\n"
                  << "  safety (>=1 leader everywhere):  "
                  << (report.safety_holds ? "verified" : "VIOLATED") << "\n"
                  << "  single leader absorbing:         "
                  << (report.single_leader_absorbing ? "verified" : "VIOLATED") << "\n"
                  << "  convergence certified:           "
                  << (report.convergence_certified
                          ? "verified"
                          : (report.exhausted ? "VIOLATED" : "n/a (not exhaustive)"))
                  << "\n";
        return report.safety_holds && report.single_leader_absorbing ? 0 : 1;
    }

    const EngineKind engine = parse_engine_kind(args.get_string("engine", "agent"));
    const BatchMode batch_mode = parse_batch_mode(args.get_string("batch-mode", "auto"));
    const auto engine_threads = static_cast<std::size_t>(args.get_u64("threads", 1));
    const double factor = args.get_double(
        "budget-factor", scenario != nullptr ? scenario->budget_factor : 3000.0);
    const double deadline_time = args.get_double("deadline", 0.0);
    require(deadline_time >= 0.0, "--deadline must be non-negative");
    // The deadline census runs on the sweep path; the single-run recording
    // modes would silently drop it, so reject the combination outright.
    require(deadline_time == 0.0 || (args.get_string("trajectory", "").empty() &&
                                     args.get_string("snapshot-at", "").empty()),
            "--deadline cannot be combined with --trajectory or --snapshot-at");

    const std::string checkpoint_path = args.get_string("checkpoint", "");
    const StepCount checkpoint_every = args.get_u64("checkpoint-every", 0);
    require(checkpoint_every == 0 || !checkpoint_path.empty(),
            "--checkpoint-every needs --checkpoint (the file to write)");
    require((checkpoint_path.empty() && args.get_string("resume", "").empty()) ||
                (args.get_string("trajectory", "").empty() &&
                 args.get_string("snapshot-at", "").empty()),
            "--checkpoint/--resume run a single seeded election; they cannot "
            "be combined with --trajectory or --snapshot-at");

    if (const std::string path = args.get_string("trajectory", ""); !path.empty()) {
        StepCount stride = args.get_u64("trajectory-every", 0);
        if (stride == 0) stride = std::max<StepCount>(1, n / 4);
        return write_trajectory(protocol, n, seed, engine, batch_mode, engine_threads,
                                StepBudget::n_log_n(n, factor), stride,
                                args.get_bool("trajectory-live-states", true), path,
                                fault_plan)
                   ? 0
                   : 1;
    }

    if (const std::string resume = args.get_string("resume", ""); !resume.empty()) {
        require(fault_plan.empty(),
                "--resume continues the checkpointed run (its fault plan "
                "included); it cannot be combined with --inject or --scenario");
        const auto sim = registry.resume_simulation(resume);
        const StepCount resumed_at = sim->steps();
        if (!checkpoint_path.empty() && checkpoint_every > 0) {
            sim->set_checkpoint(checkpoint_path, checkpoint_every);
        }
        const RunResult result = sim->run_until_one_leader(
            StepBudget::n_log_n(sim->population_size(), factor));
        if (!checkpoint_path.empty()) sim->write_checkpoint(checkpoint_path);
        std::cout << "resumed " << sim->protocol_name() << " from " << resume
                  << " at step " << resumed_at << " (engine "
                  << to_string(sim->engine_kind()) << "): "
                  << (result.converged ? "converged" : "did not converge")
                  << " at step " << result.steps << ", " << result.leader_count
                  << " leader(s)\n";
        if (!checkpoint_path.empty()) std::cout << "wrote " << checkpoint_path << "\n";
        return result.converged ? 0 : 1;
    }

    if (!checkpoint_path.empty()) {
        const auto sim = registry.make_simulation(protocol, n, seed, engine,
                                                  batch_mode, engine_threads);
        if (!fault_plan.empty()) sim->set_fault_plan(fault_plan);
        if (checkpoint_every > 0) sim->set_checkpoint(checkpoint_path, checkpoint_every);
        const RunResult result =
            sim->run_until_one_leader(StepBudget::n_log_n(n, factor));
        sim->write_checkpoint(checkpoint_path);
        std::cout << "wrote " << checkpoint_path << " (protocol " << protocol
                  << ", engine " << to_string(engine) << ", step " << result.steps
                  << ", " << result.leader_count << " leader(s), "
                  << (result.converged ? "converged" : "did not converge") << ")\n";
        return result.converged ? 0 : 1;
    }

    if (const std::string at = args.get_string("snapshot-at", ""); !at.empty()) {
        return write_timed_snapshots(protocol, n, seed, engine, batch_mode,
                                     engine_threads, StepBudget::n_log_n(n, factor),
                                     parse_time_points(at),
                                     args.get_string("snapshot-csv", "snapshots.csv"),
                                     fault_plan)
                   ? 0
                   : 1;
    }

    SweepConfig config;
    config.protocol = protocol;
    config.engine = engine;
    config.batch_mode = batch_mode;
    config.engine_threads = engine_threads;
    config.sizes = {n};
    config.repetitions = static_cast<std::size_t>(args.get_u64("reps", 20));
    config.seed = seed;
    config.verify_steps = args.get_u64("verify", 0);
    config.deadline_time = deadline_time;
    config.fault_plan = fault_plan;
    config.budget = [factor](std::size_t size) {
        return StepBudget::n_log_n(size, factor);
    };
    const SweepResult sweep = run_sweep(config);
    std::cout << render_sweep_table(sweep, protocol + " @ n = " + std::to_string(n));
    if (config.deadline_time > 0.0) {
        for (const SweepPoint& point : sweep.points) {
            if (point.deadline_leaders.count() == 0) {
                // Every repetition exhausted its budget before the deadline:
                // there is no valid deadline-time census to report.
                std::cout << "no repetition reached model time " << config.deadline_time
                          << " (n = " << point.n << ") within the step budget\n";
                return 1;
            }
            std::cout << "leaders at model time " << config.deadline_time
                      << " (n = " << point.n << ") over "
                      << point.deadline_leaders.count() << " runs: mean "
                      << point.deadline_leaders.mean() << ", max "
                      << point.deadline_leaders.max() << "; stabilized by deadline: "
                      << point.deadline_stabilized << "/" << point.repetitions << "\n";
        }
    }

    if (!fault_plan.empty()) {
        for (const SweepPoint& point : sweep.points) {
            if (point.recovery_rows.empty()) {
                std::cout << "no fault was applied at n = " << point.n
                          << " within the step budget\n";
                return 1;
            }
            std::cout << "recovery after " << fault_plan.size() << " faults (n = "
                      << point.n << "): " << point.recovery_events << " recovered";
            if (point.recovery_time.count() > 0) {
                std::cout << ", mean time " << point.recovery_time.mean() << ", max "
                          << point.recovery_time.max();
            }
            std::cout << ", unrecovered " << point.unrecovered_faults << "\n";
        }
        if (const std::string path = args.get_string("recovery-csv", "");
            !path.empty()) {
            write_recovery_csv(path, sweep);
            std::cout << "wrote " << path << "\n";
        }
    }

    JsonValue artefact = sweep_to_json(sweep);
    if (args.get_bool("states", false)) {
        const StateSpaceReport states = count_reachable_states(protocol, n, 3, seed);
        std::cout << "reachable states per agent: " << states.distinct_states
                  << " (declared bound: " << states.declared_bound << ")\n";
        artefact.set("reachable_states", static_cast<std::uint64_t>(states.distinct_states));
        artefact.set("declared_state_bound",
                     static_cast<std::uint64_t>(states.declared_bound));
    }
    if (const std::string path = args.get_string("json", ""); !path.empty()) {
        write_json_file(path, artefact);
        std::cout << "wrote " << path << "\n";
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    ArgParser args = make_parser();
    try {
        args.parse(argc, argv);
        if (args.get_bool("help", false)) {
            std::cout << args.usage("ppsim_sim");
            return 0;
        }
        return run(args);
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n\n" << args.usage("ppsim_sim");
        return 2;
    }
}
